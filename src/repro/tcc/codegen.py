"""Code generation: ControlProgram AST -> assembly -> loadable Program.

Conventions (the "runtime system" of generated tasks):

* ``r7`` holds the data base pointer and ``r6`` the MMIO base pointer,
  both loaded once at program start; global variables and the constant
  pool are accessed as ``ld/st [r7 + offset]``, so the controller state
  lives in RAM and flows through the data cache.
* Local variables live in a stack frame: the controller step is compiled
  as a function, called once per iteration (``call``/``ret`` with the
  frame carved out by ``addi sp, sp, -frame``), mirroring the paper's
  listing where ``e``, ``u`` and ``Ki`` are locals and only the state
  ``x`` (and the backups) are globals.
* ``r1..r5`` are expression scratch registers (expression depth is
  checked at compile time; controller arithmetic is shallow).
* ``r0`` is deliberately unused by generated code, mirroring registers a
  real compiler leaves cold.
* Every basic-block entry carries a ``SIG`` signature checkpoint.
* Each iteration begins with a **runtime-system tick**: the task runner
  walks a 32-word bookkeeping table (think: tick counters and
  task-control blocks of the Ada runtime the paper's generated code ran
  on) that aliases every data-cache line, reproducing the memory-system
  churn of the original setup.  Without it, most of the 128-byte cache
  would sit idle and cache faults would read as latent instead of
  overwritten/detected.

Iteration protocol: RTS tick, read MMIO inputs into their globals, call
the step function, write outputs to MMIO, bump the MMIO iteration
counter, ``SVC 0`` (yield), loop forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import CompileError
from repro.tcc.ast import (
    And,
    Assign,
    BinOp,
    BoolExpr,
    Cmp,
    Const,
    ControlProgram,
    Expr,
    If,
    Neg,
    Not,
    Or,
    Stmt,
    Var,
    While,
    materialize_constants,
)
from repro.thor.assembler import assemble
from repro.thor.cache import LINES
from repro.thor.memory import MemoryLayout, MMIODevice, WORD
from repro.thor.program import Program

_SCRATCH_REGS = ("r1", "r2", "r3", "r4", "r5")
_DATA_BASE_REG = "r7"
_MMIO_BASE_REG = "r6"

_ARITH_MNEMONIC = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

#: Branch taken when ``left <op> right`` is TRUE, after ``fcmp left, right``.
_TRUE_BRANCH = {
    "<": "blt",
    "<=": "ble",
    ">": "bgt",
    ">=": "bge",
    "==": "beq",
    "!=": "bne",
}

#: Byte offset of the runtime-system table inside the data region; the
#: table has one word per cache line so a tick touches every line.
RTS_TABLE_OFFSET = 40 * WORD
RTS_TABLE_WORDS = LINES


@dataclass(frozen=True)
class CompiledProgram:
    """The result of compiling a :class:`ControlProgram`.

    Attributes:
        program: the assembled, loadable machine program.
        assembly: the generated assembly source.
        variable_addresses: data address of every global variable (and of
            the constant-pool entries, named ``__c<i>``).
        frame_offsets: stack-frame byte offset of every local variable.
        frame_size: stack frame size in bytes.
    """

    program: Program
    assembly: str
    variable_addresses: Dict[str, int]
    frame_offsets: Dict[str, int]
    frame_size: int

    def address_of(self, name: str) -> int:
        """Data address of a global variable; raises on unknown names."""
        try:
            return self.variable_addresses[name]
        except KeyError:
            raise CompileError(f"no global variable {name!r}") from None


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._label_counter = 0
        self._signature_counter = 0

    def emit(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"L{self._label_counter}_{hint}"

    def signature(self) -> None:
        """Emit a SIG checkpoint with the next block id."""
        self._signature_counter += 1
        self.emit(f"sig {self._signature_counter}")


class _CodeGenerator:
    def __init__(self, program: ControlProgram, layout: MemoryLayout):
        program.validate()
        self.program = program
        self.layout = layout
        self.emitter = _Emitter()
        self.data_offsets: Dict[str, int] = {}
        self.rodata_offsets: Dict[str, int] = {}
        self.frame_offsets: Dict[str, int] = {}
        self.body: List[Stmt] = []
        self.constant_slots: Dict[str, float] = {}
        self._assign_layout()

    def _assign_layout(self) -> None:
        self.body, self.constant_slots = materialize_constants(self.program.body)
        offset = 0
        for name in self.program.variables:
            self.data_offsets[name] = offset
            offset += WORD
        if offset > RTS_TABLE_OFFSET:
            raise CompileError(
                f"{offset} bytes of globals exceed the {RTS_TABLE_OFFSET}-byte "
                "region below the runtime-system table"
            )
        # The constant pool is a read-only literal pool (rodata): writes
        # to it — e.g. misdirected cache write-backs — raise ADDRESS
        # ERROR, as with Ada constants placed in protected memory.
        ro_offset = 0
        for name in self.constant_slots:
            self.rodata_offsets[name] = ro_offset
            ro_offset += WORD
        if ro_offset > self.layout.rodata_size:
            raise CompileError(
                f"{ro_offset} bytes of constants exceed the rodata region "
                f"({self.layout.rodata_size} bytes)"
            )
        rts_end = RTS_TABLE_OFFSET + RTS_TABLE_WORDS * WORD
        if rts_end > self.layout.data_size:
            raise CompileError(
                f"data region too small for the runtime-system table "
                f"({rts_end} > {self.layout.data_size} bytes)"
            )
        frame = 0
        for name in self.program.locals:
            self.frame_offsets[name] = frame
            frame += WORD
        self.frame_size = frame
        if self.frame_size + WORD > self.layout.stack_size:
            raise CompileError("stack frame exceeds the stack region")

    # -- data section ---------------------------------------------------------
    def _data_section(self) -> List[str]:
        lines = [".data"]
        for name, init in self.program.variables.items():
            lines.append(f"{name}: .float {init!r}")
        pad_words = (RTS_TABLE_OFFSET - WORD * len(self.data_offsets)) // WORD
        if pad_words:
            lines.append(f"__pad: .space {pad_words}")
        lines.append(f"__rts: .space {RTS_TABLE_WORDS}")
        if self.constant_slots:
            lines.append(".rodata")
            for name, value in self.constant_slots.items():
                lines.append(f"{name}: .float {value!r}")
        return lines

    # -- operand addressing -----------------------------------------------------
    def _operand(self, name: str) -> str:
        """The ``[base+offset]`` operand text for a variable name."""
        if name in self.frame_offsets:
            return f"[sp+{self.frame_offsets[name]}]"
        if name in self.rodata_offsets:
            # The literal pool sits below the data base in the address
            # map, reachable with a negative displacement off r7.
            displacement = (
                self.layout.rodata_base - self.layout.data_base
                + self.rodata_offsets[name]
            )
            return f"[{_DATA_BASE_REG}{displacement:+d}]"
        return f"[{_DATA_BASE_REG}+{self.data_offsets[name]}]"

    def _expr_operand(self, expr: Expr) -> str:
        # Const nodes were rewritten into constant-pool Vars up front.
        if isinstance(expr, Var):
            return self._operand(expr.name)
        raise CompileError(f"not a memory operand: {expr!r}")

    # -- expressions ------------------------------------------------------------
    def _eval(self, expr: Expr, depth: int) -> str:
        """Generate code leaving the expression value in a scratch register."""
        if depth >= len(_SCRATCH_REGS):
            raise CompileError("expression too deep for the scratch registers")
        reg = _SCRATCH_REGS[depth]
        if isinstance(expr, (Var, Const)):
            self.emitter.emit(f"ld {reg}, {self._expr_operand(expr)}")
            return reg
        if isinstance(expr, Neg):
            inner = self._eval(expr.operand, depth)
            self.emitter.emit(f"fneg {reg}, {inner}")
            return reg
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, depth)
            right = self._eval(expr.right, depth + 1)
            self.emitter.emit(f"{_ARITH_MNEMONIC[expr.op]} {reg}, {left}, {right}")
            return reg
        raise CompileError(f"unknown expression node {expr!r}")

    # -- conditions -----------------------------------------------------------------
    def _cond(self, cond: BoolExpr, true_label: str, false_label: str) -> None:
        """Branch to ``true_label`` / ``false_label`` by the condition.

        NaN comparisons are unordered: no comparison branch fires, so
        control falls through to the false side — a corrupted NaN never
        satisfies a range check.
        """
        if isinstance(cond, Not):
            self._cond(cond.operand, false_label, true_label)
            return
        if isinstance(cond, And):
            middle = self.emitter.fresh_label("and")
            self._cond(cond.left, middle, false_label)
            self.emitter.label(middle)
            self._cond(cond.right, true_label, false_label)
            return
        if isinstance(cond, Or):
            middle = self.emitter.fresh_label("or")
            self._cond(cond.left, true_label, middle)
            self.emitter.label(middle)
            self._cond(cond.right, true_label, false_label)
            return
        if isinstance(cond, Cmp):
            left = self._eval(cond.left, 0)
            right = self._eval(cond.right, 1)
            self.emitter.emit(f"fcmp {left}, {right}")
            self.emitter.emit(f"{_TRUE_BRANCH[cond.op]} {true_label}")
            self.emitter.emit(f"br {false_label}")
            return
        raise CompileError(f"unknown condition node {cond!r}")

    # -- statements ---------------------------------------------------------------------
    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            reg = self._eval(stmt.expr, 0)
            self.emitter.emit(f"st {reg}, {self._operand(stmt.target)}")
            return
        if isinstance(stmt, If):
            then_label = self.emitter.fresh_label("then")
            end_label = self.emitter.fresh_label("endif")
            else_label = self.emitter.fresh_label("else") if stmt.orelse else end_label
            self._cond(stmt.cond, then_label, else_label)
            self.emitter.label(then_label)
            self.emitter.signature()
            for sub in stmt.then:
                self._stmt(sub)
            if stmt.orelse:
                self.emitter.emit(f"br {end_label}")
                self.emitter.label(else_label)
                self.emitter.signature()
                for sub in stmt.orelse:
                    self._stmt(sub)
            self.emitter.label(end_label)
            self.emitter.signature()
            return
        if isinstance(stmt, While):
            head = self.emitter.fresh_label("while")
            body = self.emitter.fresh_label("body")
            end = self.emitter.fresh_label("endwhile")
            self.emitter.label(head)
            self.emitter.signature()
            self._cond(stmt.cond, body, end)
            self.emitter.label(body)
            self.emitter.signature()
            for sub in stmt.body:
                self._stmt(sub)
            self.emitter.emit(f"br {head}")
            self.emitter.label(end)
            self.emitter.signature()
            return
        raise CompileError(f"unknown statement node {stmt!r}")

    # -- whole program ------------------------------------------------------------------
    def _emit_rts_tick(self) -> None:
        """Refresh the runtime-system table.

        The tick counter (the table's first word) is incremented, then
        broadcast to every TCB slot — a full overwrite per cache line,
        so corrupted table lines are scrubbed on the next tick rather
        than accumulating as latent state.
        """
        base = RTS_TABLE_OFFSET
        self.emitter.emit(f"ld r5, [{_DATA_BASE_REG}+{base}]")
        self.emitter.emit("addi r5, r5, 1")
        for i in range(RTS_TABLE_WORDS):
            self.emitter.emit(f"st r5, [{_DATA_BASE_REG}+{base + i * WORD}]")

    def generate(self) -> str:
        e = self.emitter
        mmio = self.layout.mmio_base
        first_symbol = next(iter(self.data_offsets))
        e.label("init")
        e.emit("sig 0")
        e.emit(f"la {_DATA_BASE_REG}, {first_symbol}")
        e.emit(f"lui {_MMIO_BASE_REG}, {mmio >> 16:#x}")
        e.emit(f"ori {_MMIO_BASE_REG}, {mmio & 0xFFFF:#x}")
        e.label("main_loop")
        e.signature()
        for i, name in enumerate(self.program.inputs):
            src = MMIODevice.INPUT_BASE + i * WORD
            e.emit(f"ld r1, [{_MMIO_BASE_REG}+{src}]")
            e.emit(f"st r1, {self._operand(name)}")
        e.emit("call step_fn")  # locals live in the callee's stack frame
        # The runtime tick runs right after the control step: its table
        # walk evicts the step's working set from the cache, so the
        # controller state is cache-resident only while the step
        # actually uses it (as with the paper's larger working set).
        self._emit_rts_tick()
        for j, name in enumerate(self.program.outputs):
            dst = MMIODevice.OUTPUT_BASE + j * WORD
            e.emit(f"ld r1, {self._operand(name)}")
            e.emit(f"st r1, [{_MMIO_BASE_REG}+{dst}]")
        e.emit(f"ld r1, [{_MMIO_BASE_REG}+{MMIODevice.ITERATION}]")
        e.emit("ldi r2, 1")
        e.emit("add r1, r1, r2")
        e.emit(f"st r1, [{_MMIO_BASE_REG}+{MMIODevice.ITERATION}]")
        e.emit("svc 0")
        e.emit("br main_loop")

        e.label("step_fn")
        e.signature()
        if self.frame_size:
            e.emit(f"addi sp, sp, -{self.frame_size}")
        for stmt in self.body:
            self._stmt(stmt)
        if self.frame_size:
            e.emit(f"addi sp, sp, {self.frame_size}")
        e.emit("ret")
        return "\n".join(self._data_section() + [".text"] + e.lines) + "\n"


def compile_program(
    program: ControlProgram, layout: MemoryLayout = MemoryLayout()
) -> CompiledProgram:
    """Compile a :class:`ControlProgram` to a loadable machine program."""
    generator = _CodeGenerator(program, layout)
    assembly = generator.generate()
    assembled = assemble(assembly, layout)
    addresses = {
        name: layout.data_base + offset
        for name, offset in generator.data_offsets.items()
    }
    addresses.update(
        {
            name: layout.rodata_base + offset
            for name, offset in generator.rodata_offsets.items()
        }
    )
    return CompiledProgram(
        program=assembled,
        assembly=assembly,
        variable_addresses=addresses,
        frame_offsets=dict(generator.frame_offsets),
        frame_size=generator.frame_size,
    )
