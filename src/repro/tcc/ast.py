"""AST node types for the tiny control compiler.

Programs are built directly from these dataclasses::

    body = [
        Assign("e", BinOp("-", Var("r"), Var("y"))),
        Assign("u", BinOp("+", BinOp("*", Var("e"), Var("Kp")), Var("x"))),
        If(Cmp(">", Var("u"), Const(70.0)), then=[Assign("u", Const(70.0))]),
    ]

All values are floats (the controller domain); a variable is persistent
program state — it keeps its value across loop iterations, exactly like
the globals of the paper's generated Ada code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import CompileError


class Expr:
    """Base class for float-valued expressions."""


@dataclass(frozen=True)
class Var(Expr):
    """A named program variable."""

    name: str


@dataclass(frozen=True)
class Const(Expr):
    """A float literal (materialised in the constant pool)."""

    value: float


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary float operation; ``op`` is one of ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise CompileError(f"unknown arithmetic operator {self.op!r}")


@dataclass(frozen=True)
class Neg(Expr):
    """Unary negation."""

    operand: Expr


class BoolExpr:
    """Base class for boolean conditions."""


@dataclass(frozen=True)
class Cmp(BoolExpr):
    """A float comparison; ``op`` is one of ``< <= > >= == !=``.

    Comparisons with NaN are false (IEEE semantics), so a corrupted NaN
    value never satisfies an in-range check.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("<", "<=", ">", ">=", "==", "!="):
            raise CompileError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class And(BoolExpr):
    """Short-circuit conjunction."""

    left: BoolExpr
    right: BoolExpr


@dataclass(frozen=True)
class Or(BoolExpr):
    """Short-circuit disjunction."""

    left: BoolExpr
    right: BoolExpr


@dataclass(frozen=True)
class Not(BoolExpr):
    """Negated condition."""

    operand: BoolExpr


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr``."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class If(Stmt):
    """Conditional with optional else branch."""

    cond: BoolExpr
    then: Sequence[Stmt]
    orelse: Sequence[Stmt] = ()


@dataclass(frozen=True)
class While(Stmt):
    """A bounded loop (conditions must eventually become false)."""

    cond: BoolExpr
    body: Sequence[Stmt]


@dataclass
class ControlProgram:
    """A compilable control task.

    Attributes:
        name: program name (for listings).
        inputs: variable names bound to the MMIO input registers, in
            MMIO order (the engine task uses ``["r", "y"]``).
        outputs: variable names written to the MMIO output registers
            after each iteration (the engine task uses ``["u_lim"]``).
        variables: global variables (with initial values): controller
            state, I/O staging — they live in the data section and
            persist across iterations, like the paper's state ``x``.
        locals: per-iteration working variables — they live in the
            task's stack frame, like the paper's ``e``, ``u``, ``Ki``.
            A local must be written before it is read in an iteration
            (otherwise it sees whatever the previous frame left behind).
        body: statements executed once per iteration.
    """

    name: str
    inputs: List[str]
    outputs: List[str]
    variables: Dict[str, float]
    body: List[Stmt] = field(default_factory=list)
    locals: Dict[str, float] = field(default_factory=dict)

    def validate(self) -> None:
        """Check declarations: disjoint scopes, I/O must be global."""
        overlap = set(self.variables) & set(self.locals)
        if overlap:
            raise CompileError(f"names declared both global and local: {sorted(overlap)}")
        declared = set(self.variables) | set(self.locals)
        for name in list(self.inputs) + list(self.outputs):
            if name not in self.variables:
                raise CompileError(f"I/O variable {name!r} must be a global variable")
        for stmt in self.body:
            _check_stmt(stmt, declared)


def _check_expr(expr: Expr, declared: "set[str]") -> None:
    if isinstance(expr, Var):
        if expr.name not in declared:
            raise CompileError(f"undeclared variable {expr.name!r}")
    elif isinstance(expr, BinOp):
        _check_expr(expr.left, declared)
        _check_expr(expr.right, declared)
    elif isinstance(expr, Neg):
        _check_expr(expr.operand, declared)
    elif not isinstance(expr, Const):
        raise CompileError(f"unknown expression node {expr!r}")


def _check_cond(cond: BoolExpr, declared: "set[str]") -> None:
    if isinstance(cond, Cmp):
        _check_expr(cond.left, declared)
        _check_expr(cond.right, declared)
    elif isinstance(cond, (And, Or)):
        _check_cond(cond.left, declared)
        _check_cond(cond.right, declared)
    elif isinstance(cond, Not):
        _check_cond(cond.operand, declared)
    else:
        raise CompileError(f"unknown condition node {cond!r}")


def _check_stmt(stmt: Stmt, declared: "set[str]") -> None:
    if isinstance(stmt, Assign):
        if stmt.target not in declared:
            raise CompileError(f"undeclared assignment target {stmt.target!r}")
        _check_expr(stmt.expr, declared)
    elif isinstance(stmt, If):
        _check_cond(stmt.cond, declared)
        for sub in list(stmt.then) + list(stmt.orelse):
            _check_stmt(sub, declared)
    elif isinstance(stmt, While):
        _check_cond(stmt.cond, declared)
        for sub in stmt.body:
            _check_stmt(sub, declared)
    else:
        raise CompileError(f"unknown statement node {stmt!r}")


def materialize_constants(
    body: Sequence[Stmt],
) -> Tuple[List[Stmt], Dict[str, float]]:
    """Rewrite the body so every literal use gets its own pool slot.

    Generated real-time code keeps one stored parameter per block use
    site rather than de-duplicating equal values, so each textual
    ``Const`` occurrence is replaced by a ``Var`` naming a fresh
    constant-pool slot (``__c0``, ``__c1``, ...).  Returns the rewritten
    statements and the slot initial values.
    """
    slots: Dict[str, float] = {}

    def fresh(value: float) -> Var:
        name = f"__c{len(slots)}"
        slots[name] = float(value)
        return Var(name)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, Const):
            return fresh(expr.value)
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        if isinstance(expr, Neg):
            return Neg(rewrite_expr(expr.operand))
        return expr

    def rewrite_cond(cond: BoolExpr) -> BoolExpr:
        if isinstance(cond, Cmp):
            return Cmp(cond.op, rewrite_expr(cond.left), rewrite_expr(cond.right))
        if isinstance(cond, And):
            return And(rewrite_cond(cond.left), rewrite_cond(cond.right))
        if isinstance(cond, Or):
            return Or(rewrite_cond(cond.left), rewrite_cond(cond.right))
        if isinstance(cond, Not):
            return Not(rewrite_cond(cond.operand))
        return cond

    def rewrite_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Assign):
            return Assign(stmt.target, rewrite_expr(stmt.expr))
        if isinstance(stmt, If):
            return If(
                rewrite_cond(stmt.cond),
                then=[rewrite_stmt(s) for s in stmt.then],
                orelse=[rewrite_stmt(s) for s in stmt.orelse],
            )
        if isinstance(stmt, While):
            return While(
                rewrite_cond(stmt.cond),
                body=[rewrite_stmt(s) for s in stmt.body],
            )
        return stmt

    rewritten = [rewrite_stmt(stmt) for stmt in body]
    return rewritten, slots


def collect_constants(program: ControlProgram) -> Tuple[float, ...]:
    """All distinct literal values used by the program body, in order."""
    seen: List[float] = []

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, Const):
            if expr.value not in seen:
                seen.append(expr.value)
        elif isinstance(expr, BinOp):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, Neg):
            visit_expr(expr.operand)

    def visit_cond(cond: BoolExpr) -> None:
        if isinstance(cond, Cmp):
            visit_expr(cond.left)
            visit_expr(cond.right)
        elif isinstance(cond, (And, Or)):
            visit_cond(cond.left)
            visit_cond(cond.right)
        elif isinstance(cond, Not):
            visit_cond(cond.operand)

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            visit_expr(stmt.expr)
        elif isinstance(stmt, If):
            visit_cond(stmt.cond)
            for sub in list(stmt.then) + list(stmt.orelse):
                visit_stmt(sub)
        elif isinstance(stmt, While):
            visit_cond(stmt.cond)
            for sub in stmt.body:
                visit_stmt(sub)

    for statement in program.body:
        visit_stmt(statement)
    return tuple(seen)
