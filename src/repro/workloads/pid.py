"""PID workloads: the §4.3 general procedure on a two-state task.

The paper generalises its mechanism to "an arbitrary number of state
variables" (§4.3).  These workloads exercise that generalisation on the
simulated CPU: a PID controller carries *two* state variables — the
integral part ``x`` and the previous measurement ``y_prev`` used by the
derivative term — each protected by its own physically-motivated
assertion (throttle range for ``x``, engine speed range for ``y_prev``)
with per-state backups and best-effort recovery.
"""

from __future__ import annotations

from typing import List

from repro.constants import THROTTLE_MAX, THROTTLE_MIN
from repro.control.base import ControllerGains
from repro.tcc.ast import (
    And,
    Assign,
    BinOp,
    Cmp,
    Const,
    ControlProgram,
    If,
    Or,
    Stmt,
    Var,
)
from repro.tcc.codegen import CompiledProgram, compile_program
from repro.thor.memory import MemoryLayout

#: Physical range of the measured engine speed (rpm) — the assertion
#: bound for the derivative state, as the throttle limits are for x.
SPEED_MIN = 0.0
SPEED_MAX = 8000.0

_DEFAULT_GAINS = ControllerGains(kd=0.0005)


def _pid_law(gains: ControllerGains) -> List[Stmt]:
    """The PID computation: e known, states x / y_prev read and updated."""
    umax = Const(THROTTLE_MAX)
    umin = Const(THROTTLE_MIN)
    return [
        # derivative on the measurement (no kick on reference steps):
        # d = -(y - y_prev) / T
        Assign(
            "d",
            BinOp(
                "/",
                BinOp("-", Var("y_prev"), Var("y")),
                Const(gains.sample_time),
            ),
        ),
        # u = Kp*e + x + Kd*d
        Assign(
            "u",
            BinOp(
                "+",
                BinOp(
                    "+",
                    BinOp("*", Var("e"), Const(gains.kp)),
                    Var("x"),
                ),
                BinOp("*", Const(gains.kd), Var("d")),
            ),
        ),
        Assign("u_lim", Var("u")),
        If(Cmp(">", Var("u_lim"), umax), then=[Assign("u_lim", umax)]),
        If(Cmp("<", Var("u_lim"), umin), then=[Assign("u_lim", umin)]),
        Assign("ki", Const(gains.ki)),
        If(
            Or(
                And(Cmp(">", Var("u"), umax), Cmp(">", Var("e"), Const(0.0))),
                And(Cmp("<", Var("u"), umin), Cmp("<", Var("e"), Const(0.0))),
            ),
            then=[Assign("ki", Const(0.0))],
        ),
        Assign(
            "x",
            BinOp(
                "+",
                Var("x"),
                BinOp("*", BinOp("*", Const(gains.sample_time), Var("e")), Var("ki")),
            ),
        ),
        Assign("y_prev", Var("y")),
    ]


def pid_algorithm_i(gains: ControllerGains = _DEFAULT_GAINS) -> ControlProgram:
    """Unprotected PID (two state variables, no assertions)."""
    body: List[Stmt] = [Assign("e", BinOp("-", Var("r"), Var("y")))]
    body.extend(_pid_law(gains))
    return ControlProgram(
        name="pid_algorithm_i",
        inputs=["r", "y"],
        outputs=["u_lim"],
        variables={
            "r": 0.0,
            "y": 0.0,
            "u_lim": 0.0,
            "x": 0.0,
            "y_prev": 0.0,
        },
        locals={"e": 0.0, "u": 0.0, "ki": gains.ki, "d": 0.0},
        body=body,
    )


def pid_algorithm_ii(gains: ControllerGains = _DEFAULT_GAINS) -> ControlProgram:
    """PID with the §4.3 general procedure over both state variables.

    Step 1 of the procedure per state: assert, then back up or recover.
    Step 2/3: assert the output; on failure deliver the previous output
    and restore *all* states to their backups.
    """
    umax = Const(THROTTLE_MAX)
    umin = Const(THROTTLE_MIN)
    body: List[Stmt] = [Assign("e", BinOp("-", Var("r"), Var("y")))]
    # State 1: the integral part, bounded by the throttle range.
    body.append(
        If(
            Or(Cmp("<", Var("x"), umin), Cmp(">", Var("x"), umax)),
            then=[Assign("x", Var("x_old"))],
            orelse=[Assign("x_old", Var("x"))],
        )
    )
    # State 2: the previous measurement, bounded by the speed range.
    body.append(
        If(
            Or(
                Cmp("<", Var("y_prev"), Const(SPEED_MIN)),
                Cmp(">", Var("y_prev"), Const(SPEED_MAX)),
            ),
            then=[Assign("y_prev", Var("yp_old"))],
            orelse=[Assign("yp_old", Var("y_prev"))],
        )
    )
    body.extend(_pid_law(gains))
    # Output assertion + full state rollback (the procedure's step 2).
    body.extend(
        [
            If(
                Or(Cmp("<", Var("u_lim"), umin), Cmp(">", Var("u_lim"), umax)),
                then=[
                    Assign("u_lim", Var("u_old")),
                    Assign("x", Var("x_old")),
                    Assign("y_prev", Var("yp_old")),
                ],
            ),
            Assign("u_old", Var("u_lim")),
        ]
    )
    return ControlProgram(
        name="pid_algorithm_ii",
        inputs=["r", "y"],
        outputs=["u_lim"],
        variables={
            "r": 0.0,
            "y": 0.0,
            "u_lim": 0.0,
            "x": 0.0,
            "y_prev": 0.0,
            "x_old": 0.0,
            "yp_old": 0.0,
            "u_old": 0.0,
        },
        locals={"e": 0.0, "u": 0.0, "ki": gains.ki, "d": 0.0},
        body=body,
    )


def compile_pid_algorithm_i(
    gains: ControllerGains = _DEFAULT_GAINS,
    layout: MemoryLayout = MemoryLayout(),
) -> CompiledProgram:
    """Unprotected PID compiled for the simulated CPU."""
    return compile_program(pid_algorithm_i(gains), layout)


def compile_pid_algorithm_ii(
    gains: ControllerGains = _DEFAULT_GAINS,
    layout: MemoryLayout = MemoryLayout(),
) -> CompiledProgram:
    """Protected PID compiled for the simulated CPU."""
    return compile_program(pid_algorithm_ii(gains), layout)
