"""Algorithms I and II as compilable control programs.

The statement sequences are direct transcriptions of the paper's two
listings.  Gains and limits default to the library-wide tuning
(:class:`repro.control.ControllerGains`, throttle 0–70 degrees) so the
compiled workload, the model-level controllers and the engine plant all
agree.
"""

from __future__ import annotations

from typing import List

from repro.control.base import ControllerGains
from repro.constants import THROTTLE_MAX, THROTTLE_MIN
from repro.tcc.ast import (
    And,
    Assign,
    BinOp,
    Cmp,
    Const,
    ControlProgram,
    If,
    Or,
    Stmt,
    Var,
)
from repro.tcc.codegen import CompiledProgram, compile_program
from repro.thor.memory import MemoryLayout


#: rpm -> rad/s and back; the product of the two stored single-precision
#: constants is exactly 1.0 in IEEE-754 arithmetic (0.125 * 8.0), so the
#: conditioning roundtrip is semantically transparent.
RPM_TO_RAD = 0.125
RAD_TO_RPM = 8.0


def _error_statements(conditioned: bool) -> List[Stmt]:
    """Compute e = r - y, optionally through the unit-conversion signals.

    Real generated code scales raw sensor inputs into engineering units
    before the control law and back for actuation; the intermediate
    signals (``r_rad``, ``y_rad``) are materialised like any other block
    output.  The conversion constants multiply to exactly 1.0, so the
    result is bit-identical to the direct subtraction.
    """
    if not conditioned:
        return [Assign("e", BinOp("-", Var("r"), Var("y")))]
    return [
        Assign("r_rad", BinOp("*", Var("r"), Const(RPM_TO_RAD))),
        Assign("y_rad", BinOp("*", Var("y"), Const(RPM_TO_RAD))),
        Assign(
            "e",
            BinOp("*", BinOp("-", Var("r_rad"), Var("y_rad")), Const(RAD_TO_RPM)),
        ),
    ]


def _actuator_map_statements() -> List[Stmt]:
    """The actuator calibration map: u_out = segment_slope*u_lim + offset.

    A four-segment piecewise-linear linearisation of the throttle servo,
    as generated engine code carries for its actuators.  All segments are
    stored as separate (bound, slope, offset) constants; with the
    identity calibration (slope 1.0, offset 0.0) the delivered output is
    bit-identical to ``u_lim``, while bit-flips in any of the table
    constants distort one iteration's output.
    """
    def segment(slope: float, offset: float) -> List[Stmt]:
        return [
            Assign(
                "u_out",
                BinOp("+", BinOp("*", Var("u_lim"), Const(slope)), Const(offset)),
            )
        ]

    b1, b2, b3 = 17.5, 35.0, 52.5
    return [
        If(
            Cmp("<", Var("u_lim"), Const(b1)),
            then=segment(1.0, 0.0),
            orelse=[
                If(
                    Cmp("<", Var("u_lim"), Const(b2)),
                    then=segment(1.0, 0.0),
                    orelse=[
                        If(
                            Cmp("<", Var("u_lim"), Const(b3)),
                            then=segment(1.0, 0.0),
                            orelse=segment(1.0, 0.0),
                        )
                    ],
                )
            ],
        )
    ]


def _control_law(gains: ControllerGains) -> List[Stmt]:
    """The PI computation shared by both variants (after e is known)."""
    umax = Const(THROTTLE_MAX)
    umin = Const(THROTTLE_MIN)
    return [
        # u = e * Kp + x
        Assign("u", BinOp("+", BinOp("*", Var("e"), Const(gains.kp)), Var("x"))),
        # u_lim = limit_output(u)
        Assign("u_lim", Var("u")),
        If(Cmp(">", Var("u_lim"), umax), then=[Assign("u_lim", umax)]),
        If(Cmp("<", Var("u_lim"), umin), then=[Assign("u_lim", umin)]),
        # anti-windup: stop integrating when saturated outwards
        Assign("ki", Const(gains.ki)),
        If(
            Or(
                And(Cmp(">", Var("u"), umax), Cmp(">", Var("e"), Const(0.0))),
                And(Cmp("<", Var("u"), umin), Cmp("<", Var("e"), Const(0.0))),
            ),
            then=[Assign("ki", Const(0.0))],
        ),
        # x = x + T * e * Ki
        Assign(
            "x",
            BinOp(
                "+",
                Var("x"),
                BinOp("*", BinOp("*", Const(gains.sample_time), Var("e")), Var("ki")),
            ),
        ),
    ]


def _finish(
    name: str,
    gains: ControllerGains,
    conditioned: bool,
    extra_globals: dict,
    body: List[Stmt],
) -> ControlProgram:
    """Assemble the program shell shared by both algorithms."""
    variables = {"r": 0.0, "y": 0.0, "u_lim": 0.0, "x": 0.0}
    variables.update(extra_globals)
    local_vars = {"e": 0.0, "u": 0.0, "ki": gains.ki}
    outputs = ["u_lim"]
    if conditioned:
        variables["u_out"] = 0.0
        local_vars.update({"r_rad": 0.0, "y_rad": 0.0})
        body = body + _actuator_map_statements()
        outputs = ["u_out"]
    return ControlProgram(
        name=name,
        inputs=["r", "y"],
        outputs=outputs,
        variables=variables,
        locals=local_vars,
        body=body,
    )


def algorithm_i(
    gains: ControllerGains = ControllerGains(), conditioned: bool = True
) -> ControlProgram:
    """The paper's Algorithm I: plain PI with limiting and anti-windup.

    As in the listing, only the state ``x`` (plus the I/O staging) is a
    global; ``e``, ``u`` and ``Ki`` are per-iteration locals.  With
    ``conditioned=True`` (default) the program carries the unit
    conversions and the actuator calibration map of real generated code;
    with ``conditioned=False`` it is the bare transcription.
    """
    body = _error_statements(conditioned) + _control_law(gains)
    return _finish("pi_algorithm_i", gains, conditioned, {}, body)


def algorithm_ii(
    gains: ControllerGains = ControllerGains(), conditioned: bool = True
) -> ControlProgram:
    """Algorithm II: executable assertions + best effort recovery.

    Changes from Algorithm I (the paper's bold lines): the in-range
    assertion and recovery of the state ``x`` before it is backed up, and
    the in-range assertion and recovery of the output ``u_lim`` before it
    is backed up and delivered.
    """
    umax = Const(THROTTLE_MAX)
    umin = Const(THROTTLE_MIN)
    out_of_range_x = Or(Cmp("<", Var("x"), umin), Cmp(">", Var("x"), umax))
    out_of_range_u = Or(Cmp("<", Var("u_lim"), umin), Cmp(">", Var("u_lim"), umax))
    body: List[Stmt] = _error_statements(conditioned)
    body.append(
        # Assertion on the state, then back-up or best effort recovery.
        If(
            out_of_range_x,
            then=[Assign("x", Var("x_old"))],
            orelse=[Assign("x_old", Var("x"))],
        )
    )
    body.extend(_control_law(gains))
    body.extend(
        [
            # Assertion on the output; recover output and matching state.
            If(
                out_of_range_u,
                then=[Assign("u_lim", Var("u_old")), Assign("x", Var("x_old"))],
            ),
            Assign("u_old", Var("u_lim")),
        ]
    )
    return _finish(
        "pi_algorithm_ii",
        gains,
        conditioned,
        {"x_old": 0.0, "u_old": 0.0},
        body,
    )


def compile_algorithm_i(
    gains: ControllerGains = ControllerGains(),
    layout: MemoryLayout = MemoryLayout(),
    conditioned: bool = True,
) -> CompiledProgram:
    """Algorithm I compiled for the simulated CPU."""
    return compile_program(algorithm_i(gains, conditioned), layout)


def compile_algorithm_ii(
    gains: ControllerGains = ControllerGains(),
    layout: MemoryLayout = MemoryLayout(),
    conditioned: bool = True,
) -> CompiledProgram:
    """Algorithm II compiled for the simulated CPU."""
    return compile_program(algorithm_ii(gains, conditioned), layout)
