"""A MIMO workload — the paper's future-work direction, compilable.

The conclusions announce follow-up work on "multiple input and multiple
output control algorithms such as jet-engine controllers".  This module
provides a two-loop cross-coupled PI controller (think: fan and core
spool speed of a two-spool turbofan, each actuated by its own fuel/vane
command, with static decoupling terms) written in the tcc DSL, so the
same CPU-level fault-injection flow applies to a MIMO task.
"""

from __future__ import annotations

from repro.constants import THROTTLE_MAX, THROTTLE_MIN
from repro.tcc.ast import (
    And,
    Assign,
    BinOp,
    Cmp,
    Const,
    ControlProgram,
    If,
    Or,
    Var,
)


def mimo_two_spool(
    kp1: float = 0.01,
    ki1: float = 0.03,
    kp2: float = 0.008,
    ki2: float = 0.02,
    decouple12: float = 0.002,
    decouple21: float = 0.0015,
    sample_time: float = 0.0154,
) -> ControlProgram:
    """A 2-input/2-output cross-coupled PI controller program.

    Loop 1 tracks (r1, y1) with command u1; loop 2 tracks (r2, y2) with
    command u2; each command is corrected by a static decoupling term
    from the other loop's error, limited to the actuator range and
    integrated with anti-windup.
    """
    umax = Const(THROTTLE_MAX)
    umin = Const(THROTTLE_MIN)
    zero = Const(0.0)

    def loop(n: str, kp: float, ki: float, cross: str, decouple: float):
        e, u, u_lim, x, kiv = f"e{n}", f"u{n}", f"u_lim{n}", f"x{n}", f"ki{n}"
        return [
            Assign(e, BinOp("-", Var(f"r{n}"), Var(f"y{n}"))),
            Assign(
                u,
                BinOp(
                    "-",
                    BinOp("+", BinOp("*", Var(e), Const(kp)), Var(x)),
                    BinOp("*", Var(cross), Const(decouple)),
                ),
            ),
            Assign(u_lim, Var(u)),
            If(Cmp(">", Var(u_lim), umax), then=[Assign(u_lim, umax)]),
            If(Cmp("<", Var(u_lim), umin), then=[Assign(u_lim, umin)]),
            Assign(kiv, Const(ki)),
            If(
                Or(
                    And(Cmp(">", Var(u), umax), Cmp(">", Var(e), zero)),
                    And(Cmp("<", Var(u), umin), Cmp("<", Var(e), zero)),
                ),
                then=[Assign(kiv, zero)],
            ),
            Assign(
                x,
                BinOp(
                    "+",
                    Var(x),
                    BinOp("*", BinOp("*", Const(sample_time), Var(e)), Var(kiv)),
                ),
            ),
        ]

    # Loop 2's error must exist before loop 1 uses it for decoupling.
    body = [
        Assign("e2", BinOp("-", Var("r2"), Var("y2"))),
    ]
    body.extend(loop("1", kp1, ki1, cross="e2", decouple=decouple12))
    body.extend(loop("2", kp2, ki2, cross="e1", decouple=decouple21))

    variables = {name: 0.0 for name in (
        "r1", "y1", "r2", "y2",
        "u_lim1", "x1",
        "u_lim2", "x2",
    )}
    local_vars = {"e1": 0.0, "u1": 0.0, "ki1": ki1, "e2": 0.0, "u2": 0.0, "ki2": ki2}
    return ControlProgram(
        name="mimo_two_spool",
        inputs=["r1", "y1", "r2", "y2"],
        outputs=["u_lim1", "u_lim2"],
        variables=variables,
        locals=local_vars,
        body=body,
    )
