"""The paper's workloads: PI controller Algorithms I and II as tcc ASTs.

:func:`algorithm_i` is the plain PI controller of §2; :func:`algorithm_ii`
adds the executable assertions and best-effort recovery of §4.3.  Both
compile to the simulated CPU via :func:`repro.tcc.compile_program` and
interpret identically (modulo single-precision rounding) to
:class:`repro.control.PIController` / :class:`GuardedPIController`.
"""

from repro.workloads.pi import (
    algorithm_i,
    algorithm_ii,
    compile_algorithm_i,
    compile_algorithm_ii,
)
from repro.workloads.pid import (
    compile_pid_algorithm_i,
    compile_pid_algorithm_ii,
    pid_algorithm_i,
    pid_algorithm_ii,
)
from repro.workloads.mimo import mimo_two_spool

__all__ = [
    "algorithm_i",
    "algorithm_ii",
    "compile_algorithm_i",
    "compile_algorithm_ii",
    "pid_algorithm_i",
    "pid_algorithm_ii",
    "compile_pid_algorithm_i",
    "compile_pid_algorithm_ii",
    "mimo_two_spool",
]
