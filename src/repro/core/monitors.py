"""Recording of assertion firings.

The guard reports every assertion failure (and the recovery taken) to an
:class:`AssertionMonitor`; analysis code uses the events to attribute
failure-mode changes to the protection mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class AssertionEvent:
    """One assertion failure.

    Attributes:
        iteration: control iteration index at which the check fired.
        kind: ``"state"`` or ``"output"``.
        index: position within the state or output vector.
        value: the rejected value.
        recovered_to: the substitute delivered by the recovery policy.
    """

    iteration: int
    kind: str
    index: int
    value: float
    recovered_to: float


class AssertionMonitor:
    """Collects :class:`AssertionEvent` records for one run."""

    def __init__(self) -> None:
        self._events: List[AssertionEvent] = []

    def record(self, event: AssertionEvent) -> None:
        """Append one event."""
        self._events.append(event)

    @property
    def events(self) -> Tuple[AssertionEvent, ...]:
        """All recorded events, in firing order."""
        return tuple(self._events)

    def count(self, kind: str = "") -> int:
        """Number of events, optionally restricted to one kind."""
        if not kind:
            return len(self._events)
        return sum(1 for e in self._events if e.kind == kind)

    def reset(self) -> None:
        """Discard all recorded events."""
        self._events = []
