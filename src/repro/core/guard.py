"""The generic controller guard (§4.3 of the paper).

:class:`ControllerGuard` wraps any controller that exposes its state as a
flat float vector and applies the paper's general procedure for an
arbitrary number of state variables and output signals:

1. Before backing up any state ``x_i(k)``, assert its correctness.  On
   failure, best-effort recover ``x_i(k) = x_i(k-1)``; otherwise back it
   up: ``x_i(k-1) = x_i(k)``.
2. Run the wrapped controller to produce the outputs ``u_j(k)``.
3. Before returning, assert every output.  If any fails, recover
   ``u_j(k) = u_j(k-1)`` for all outputs and roll the state back to the
   backed-up ``x_i(k-1)``.
4. Back up the outputs and return them.

:class:`repro.control.GuardedPIController` (Algorithm II) is the
single-state, single-output instance of this procedure; a test asserts
the two produce identical outputs step for step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.core.assertions import Assertion
from repro.core.monitors import AssertionEvent, AssertionMonitor
from repro.core.recovery import BackupStore, HoldLastGoodPolicy, RecoveryPolicy
from repro.errors import ConfigurationError


class VectorController(Protocol):
    """A controller with vector I/O and an exposable flat state."""

    def step_vector(
        self, references: Sequence[float], measurements: Sequence[float]
    ) -> List[float]:
        """One iteration over vector references/measurements."""
        ...

    def reset(self) -> None:
        """Restore the initial state."""
        ...

    def state_vector(self) -> List[float]:
        """Internal state as a flat list."""
        ...

    def set_state_vector(self, state: List[float]) -> None:
        """Restore internal state."""
        ...


@dataclass(frozen=True)
class GuardedStep:
    """Result of one guarded iteration.

    Attributes:
        outputs: the delivered (possibly recovered) output vector.
        recovered_states: indices of state variables that were recovered.
        recovered_outputs: True if the output assertion fired and the
            previous iteration's outputs were delivered instead.
    """

    outputs: Tuple[float, ...]
    recovered_states: Tuple[int, ...]
    recovered_outputs: bool


class ControllerGuard:
    """Wrap a controller with executable assertions + best effort recovery.

    Args:
        controller: the wrapped controller.  Either a vector controller
            (with ``step_vector``) or a scalar
            :class:`repro.control.FloatController`; scalar controllers are
            treated as 1-reference/1-output vector controllers.
        state_assertions: one assertion per state variable.
        output_assertions: one assertion per output signal.
        initial_outputs: output backup used if the very first iteration
            already fails its output assertion; defaults to zeros.
        policy: recovery policy (default: the paper's hold-last-good).
        monitor: optional event sink; one is created if not given.
    """

    def __init__(
        self,
        controller,
        state_assertions: Sequence[Assertion],
        output_assertions: Sequence[Assertion],
        initial_outputs: Optional[Sequence[float]] = None,
        policy: Optional[RecoveryPolicy] = None,
        monitor: Optional[AssertionMonitor] = None,
    ):
        self.controller = controller
        self.state_assertions = tuple(state_assertions)
        self.output_assertions = tuple(output_assertions)
        if not self.state_assertions:
            raise ConfigurationError("need at least one state assertion")
        if not self.output_assertions:
            raise ConfigurationError("need at least one output assertion")
        width = len(controller.state_vector())
        if width != len(self.state_assertions):
            raise ConfigurationError(
                f"{len(self.state_assertions)} state assertions for "
                f"{width}-element state vector"
            )
        if initial_outputs is None:
            initial_outputs = [0.0] * len(self.output_assertions)
        if len(initial_outputs) != len(self.output_assertions):
            raise ConfigurationError("initial_outputs width mismatch")
        self.policy = policy if policy is not None else HoldLastGoodPolicy()
        self.monitor = monitor if monitor is not None else AssertionMonitor()
        self._state_backup = BackupStore(controller.state_vector())
        self._output_backup = BackupStore(initial_outputs)
        self._iteration = 0

    # -- the §4.3 procedure -------------------------------------------------
    def guarded_step(
        self, references: Sequence[float], measurements: Sequence[float]
    ) -> GuardedStep:
        """One guarded control iteration with full recovery detail."""
        recovered_states = self._validate_and_backup_state()
        outputs = self._run_controller(references, measurements)
        recovered_outputs = self._validate_outputs(outputs)
        if recovered_outputs:
            outputs = self._output_backup.snapshot()
            self.controller.set_state_vector(self._state_backup.snapshot())
        else:
            self._output_backup.restore_all(outputs)
        for assertion, value in zip(self.output_assertions, outputs):
            assertion.observe(value)
        self._iteration += 1
        return GuardedStep(
            outputs=tuple(outputs),
            recovered_states=tuple(recovered_states),
            recovered_outputs=recovered_outputs,
        )

    def _validate_and_backup_state(self) -> List[int]:
        state = self.controller.state_vector()
        recovered: List[int] = []
        for i, (assertion, value) in enumerate(zip(self.state_assertions, state)):
            if assertion.holds(value):
                self._state_backup.put(i, value)
            else:
                substitute = self.policy.recover(i, value, self._state_backup)
                self.monitor.record(
                    AssertionEvent(
                        iteration=self._iteration,
                        kind="state",
                        index=i,
                        value=value,
                        recovered_to=substitute,
                    )
                )
                state[i] = substitute
                recovered.append(i)
            assertion.observe(state[i])
        if recovered:
            self.controller.set_state_vector(state)
        return recovered

    def _run_controller(
        self, references: Sequence[float], measurements: Sequence[float]
    ) -> List[float]:
        if hasattr(self.controller, "step_vector"):
            outputs = list(self.controller.step_vector(references, measurements))
        else:
            if len(references) != 1 or len(measurements) != 1:
                raise ConfigurationError(
                    "scalar controller takes exactly one reference and one measurement"
                )
            outputs = [self.controller.step(references[0], measurements[0])]
        if len(outputs) != len(self.output_assertions):
            raise ConfigurationError(
                f"controller produced {len(outputs)} outputs, "
                f"expected {len(self.output_assertions)}"
            )
        return outputs

    def _validate_outputs(self, outputs: Sequence[float]) -> bool:
        failed = False
        for j, (assertion, value) in enumerate(zip(self.output_assertions, outputs)):
            if not assertion.holds(value):
                self.monitor.record(
                    AssertionEvent(
                        iteration=self._iteration,
                        kind="output",
                        index=j,
                        value=value,
                        recovered_to=self._output_backup.get(j),
                    )
                )
                failed = True
        return failed

    # -- SpeedController compatibility ---------------------------------------
    def step(self, reference: float, measured: float) -> float:
        """Scalar convenience wrapper around :meth:`guarded_step`."""
        return self.guarded_step([reference], [measured]).outputs[0]

    def warm_start(self, reference: float, measured: float, steady_output: float) -> None:
        """Warm-start the wrapped controller and refresh all backups."""
        if hasattr(self.controller, "warm_start"):
            self.controller.warm_start(reference, measured, steady_output)
        self._state_backup.restore_all(self.controller.state_vector())
        self._output_backup.restore_all(
            [float(steady_output)] * len(self._output_backup.snapshot())
        )

    def reset(self) -> None:
        """Reset the wrapped controller, backups, assertions and counter."""
        self.controller.reset()
        self._state_backup.restore_all(self.controller.state_vector())
        self._output_backup.reset()
        for assertion in self.state_assertions + self.output_assertions:
            assertion.reset()
        self._iteration = 0

    # -- state access (checkpointing) ------------------------------------------
    def state_vector(self) -> List[float]:
        """Controller state followed by both backup vectors."""
        return (
            self.controller.state_vector()
            + self._state_backup.snapshot()
            + self._output_backup.snapshot()
        )

    def set_state_vector(self, state: List[float]) -> None:
        """Restore state captured by :meth:`state_vector`."""
        n_state = len(self.controller.state_vector())
        n_out = len(self._output_backup.snapshot())
        expected = 2 * n_state + n_out
        if len(state) != expected:
            raise ConfigurationError(f"expected {expected} state values")
        self.controller.set_state_vector(list(state[:n_state]))
        self._state_backup.restore_all(state[n_state : 2 * n_state])
        self._output_backup.restore_all(state[2 * n_state :])
