"""Backup storage and best-effort recovery policies.

The paper's recovery replaces a failed value with the copy backed up in
the previous iteration.  The :class:`BackupStore` holds those copies; a
:class:`RecoveryPolicy` decides what to substitute when an assertion
fails.  ``HoldLastGoodPolicy`` is the paper's mechanism;
``ResetToInitialPolicy`` is an ablation alternative (benchmarked in
``bench_ablation_recovery_policy``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError


class BackupStore:
    """Previous-iteration copies of a fixed-width float vector."""

    def __init__(self, initial: Sequence[float]):
        if len(initial) == 0:
            raise ConfigurationError("backup store must hold at least one value")
        self._initial = [float(v) for v in initial]
        self._values = list(self._initial)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, index: int) -> float:
        """The backed-up value at ``index``."""
        return self._values[index]

    def put(self, index: int, value: float) -> None:
        """Back up ``value`` at ``index``."""
        self._values[index] = float(value)

    def snapshot(self) -> List[float]:
        """A copy of all backed-up values."""
        return list(self._values)

    def restore_all(self, values: Sequence[float]) -> None:
        """Replace the whole backup vector (width must match)."""
        if len(values) != len(self._values):
            raise ConfigurationError("backup width mismatch")
        self._values = [float(v) for v in values]

    def reset(self) -> None:
        """Return to the initial backup values."""
        self._values = list(self._initial)


class RecoveryPolicy:
    """Strategy for replacing a value that failed its assertion."""

    name: str = "recovery"

    def recover(self, index: int, failed_value: float, backups: BackupStore) -> float:
        """The substitute value for position ``index``."""
        raise NotImplementedError


class HoldLastGoodPolicy(RecoveryPolicy):
    """The paper's best effort recovery: use the previous iteration's value."""

    name = "hold-last-good"

    def recover(self, index: int, failed_value: float, backups: BackupStore) -> float:
        return backups.get(index)


class ResetToInitialPolicy(RecoveryPolicy):
    """Ablation policy: reset the failed value to a fixed safe value.

    Simpler than backup-based recovery (no per-iteration copying) but
    discards all accumulated control state, so it trades a guaranteed
    in-range value for a larger transient.
    """

    name = "reset-to-initial"

    def __init__(self, safe_values: Sequence[float]):
        if len(safe_values) == 0:
            raise ConfigurationError("need at least one safe value")
        self._safe = [float(v) for v in safe_values]

    def recover(self, index: int, failed_value: float, backups: BackupStore) -> float:
        return self._safe[index % len(self._safe)]
