"""Executable assertions on controller variables.

Assertions are pure predicates over a single float.  They must *never*
raise on unusual inputs (NaN, infinities): a corrupted value is exactly
what they exist to judge, and a corrupted value fails the check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.constants import THROTTLE_MAX, THROTTLE_MIN


class Assertion:
    """Base class: an executable check on one controller variable."""

    #: Short name used in assertion-event logs.
    name: str = "assertion"

    def holds(self, value: float) -> bool:
        """True if ``value`` satisfies the specification."""
        raise NotImplementedError

    def observe(self, value: float) -> None:
        """Record an *accepted* value (hook for stateful assertions).

        Called by the guard after a value passes (or is recovered), so
        history-based assertions such as :class:`RateLimitAssertion` track
        the validated sequence rather than raw corrupted values.
        """

    def reset(self) -> None:
        """Clear any internal history."""


@dataclass
class RangeAssertion(Assertion):
    """``lower <= value <= upper``; NaN always fails.

    This is the paper's assertion: the physical limits of the engine
    throttle bound both the controller state and the output.
    """

    lower: float
    upper: float
    name: str = "range"

    def __post_init__(self) -> None:
        if not self.lower <= self.upper:
            raise ConfigurationError(f"range bounds inverted: {self.lower} > {self.upper}")

    def holds(self, value: float) -> bool:
        # Comparisons with NaN are false, so NaN correctly fails here.
        return self.lower <= value <= self.upper


@dataclass
class RateLimitAssertion(Assertion):
    """The value may move at most ``max_delta`` per iteration.

    A *more sophisticated* assertion in the sense of the paper's §4.4
    discussion: it catches in-range jumps (Figure 10's 10° -> 69° state
    corruption) that a pure range check accepts.  The first checked value
    is always accepted (there is no history yet).
    """

    max_delta: float
    name: str = "rate-limit"
    _last: float = field(default=math.nan, repr=False)

    def __post_init__(self) -> None:
        if self.max_delta <= 0:
            raise ConfigurationError("max_delta must be positive")

    def holds(self, value: float) -> bool:
        if math.isnan(value):
            return False
        if math.isnan(self._last):
            return True
        return abs(value - self._last) <= self.max_delta

    def observe(self, value: float) -> None:
        self._last = value

    def reset(self) -> None:
        self._last = math.nan


@dataclass
class PredicateAssertion(Assertion):
    """Wrap an arbitrary predicate as an assertion.

    The predicate is guarded: any exception it raises counts as a failed
    check (a corrupted value must not crash the checker).
    """

    predicate: Callable[[float], bool]
    name: str = "predicate"

    def holds(self, value: float) -> bool:
        try:
            return bool(self.predicate(value))
        except Exception:
            return False


class CompositeAssertion(Assertion):
    """All member assertions must hold (logical AND)."""

    def __init__(self, members: Sequence[Assertion], name: str = "composite"):
        if not members:
            raise ConfigurationError("composite assertion needs members")
        self.members: Tuple[Assertion, ...] = tuple(members)
        self.name = name

    def holds(self, value: float) -> bool:
        return all(member.holds(value) for member in self.members)

    def observe(self, value: float) -> None:
        for member in self.members:
            member.observe(value)

    def reset(self) -> None:
        for member in self.members:
            member.reset()


def throttle_range_assertion() -> RangeAssertion:
    """The paper's assertion: value within the 0.0–70.0 degree throttle range."""
    return RangeAssertion(lower=THROTTLE_MIN, upper=THROTTLE_MAX, name="throttle-range")
