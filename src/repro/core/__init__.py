"""The paper's contribution: executable assertions + best effort recovery.

An *executable assertion* is a software check verifying that a variable
fulfils limitations given by a specification — here, the physical
constraints of the controlled object (a throttle moves between 0 and 70
degrees).  *Best effort recovery* replaces a value that fails its
assertion with the value backed up in the previous iteration; it is "best
effort" because the controller input may have changed since, so the
recovered output can differ slightly from the fault-free one.

* :mod:`repro.core.assertions` — assertion types (range, rate-limit,
  composite, predicate),
* :mod:`repro.core.recovery` — backup storage and recovery policies,
* :mod:`repro.core.guard` — :class:`ControllerGuard`, the generic N-state /
  M-output protection procedure of §4.3,
* :mod:`repro.core.monitors` — assertion-event recording.
"""

from repro.core.assertions import (
    Assertion,
    CompositeAssertion,
    PredicateAssertion,
    RangeAssertion,
    RateLimitAssertion,
    throttle_range_assertion,
)
from repro.core.guard import ControllerGuard, GuardedStep
from repro.core.monitors import AssertionEvent, AssertionMonitor
from repro.core.recovery import (
    BackupStore,
    HoldLastGoodPolicy,
    RecoveryPolicy,
    ResetToInitialPolicy,
)

__all__ = [
    "Assertion",
    "RangeAssertion",
    "RateLimitAssertion",
    "PredicateAssertion",
    "CompositeAssertion",
    "throttle_range_assertion",
    "BackupStore",
    "RecoveryPolicy",
    "HoldLastGoodPolicy",
    "ResetToInitialPolicy",
    "ControllerGuard",
    "GuardedStep",
    "AssertionEvent",
    "AssertionMonitor",
]
