"""The controlled object: an engine model plus experiment profiles.

The paper controls the speed of an engine through its throttle angle
(0–70 degrees) with a sample interval of 15.4 ms over 650 iterations
(10 seconds).  The reference speed steps from 2000 to 3000 rpm at t = 5 s
(Figure 3) and the engine load has two bumps, in 3 < t < 4 and 7 < t < 8
(Figure 4).

This package provides

* :class:`EngineModel` / :class:`EngineParameters` — a first-order intake
  dynamics + rotational inertia engine,
* :mod:`repro.plant.profiles` — the reference-speed and load profiles,
* :class:`ClosedLoop` — a controller-in-the-loop runner recording traces,
* :func:`build_engine_diagram` — the same engine expressed as a
  :mod:`repro.blocks` diagram (the Figure 1 environment model).
"""

from repro.plant.engine import EngineModel, EngineParameters, build_engine_diagram
from repro.plant.figure1 import (
    add_pi_controller_blocks,
    build_figure1_diagram,
    build_pi_controller_diagram,
)
from repro.plant.loop import ClosedLoop, LoopTrace
from repro.plant.twospool import TwoSpoolEngine, TwoSpoolParameters, run_mimo_loop
from repro.plant.profiles import (
    ITERATIONS,
    SAMPLE_TIME,
    THROTTLE_MAX,
    THROTTLE_MIN,
    LoadProfile,
    ReferenceProfile,
    paper_load_profile,
    paper_reference_profile,
)

__all__ = [
    "EngineModel",
    "EngineParameters",
    "build_engine_diagram",
    "add_pi_controller_blocks",
    "build_pi_controller_diagram",
    "build_figure1_diagram",
    "ClosedLoop",
    "LoopTrace",
    "TwoSpoolEngine",
    "TwoSpoolParameters",
    "run_mimo_loop",
    "ReferenceProfile",
    "LoadProfile",
    "paper_reference_profile",
    "paper_load_profile",
    "SAMPLE_TIME",
    "ITERATIONS",
    "THROTTLE_MIN",
    "THROTTLE_MAX",
]
