"""Experiment profiles: sample timing, reference speed and engine load.

Constants mirror §2 of the paper: 650 iterations at a 15.4 ms sample
interval (10 seconds), throttle restricted to 0.0–70.0 degrees, reference
speed 2000 rpm stepping to 3000 rpm halfway, and load-torque bumps at
3 < t < 4 and 7 < t < 8 that make the actual speed deviate from the
reference (Figures 3 and 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.constants import ITERATIONS, SAMPLE_TIME, THROTTLE_MAX, THROTTLE_MIN

__all__ = [
    "SAMPLE_TIME",
    "ITERATIONS",
    "THROTTLE_MIN",
    "THROTTLE_MAX",
    "ReferenceProfile",
    "LoadBump",
    "LoadProfile",
    "paper_reference_profile",
    "paper_load_profile",
]


@dataclass(frozen=True)
class ReferenceProfile:
    """A reference speed signal: piecewise-constant steps.

    Attributes:
        step_times: times (s) at which a new level begins; the first entry
            must be 0.0.
        levels: speed level (rpm) active from the matching step time.
    """

    step_times: Sequence[float]
    levels: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.step_times) != len(self.levels) or not self.step_times:
            raise ValueError("step_times and levels must be non-empty and matched")
        if self.step_times[0] != 0.0:
            raise ValueError("first step time must be 0.0")

    def value(self, t: float) -> float:
        """Reference speed (rpm) at time ``t``."""
        current = self.levels[0]
        for time, level in zip(self.step_times, self.levels):
            if t >= time:
                current = level
        return current

    def samples(self, sample_time: float = SAMPLE_TIME, steps: int = ITERATIONS) -> List[float]:
        """The profile sampled at the experiment's iteration instants."""
        return [self.value(k * sample_time) for k in range(steps)]


@dataclass(frozen=True)
class LoadBump:
    """A smooth raised-cosine load bump between ``start`` and ``end``."""

    start: float
    end: float
    magnitude: float

    def value(self, t: float) -> float:
        """Additional load torque at ``t`` (0 outside the bump window)."""
        if not self.start < t < self.end:
            return 0.0
        phase = (t - self.start) / (self.end - self.start)
        return self.magnitude * 0.5 * (1.0 - math.cos(2.0 * math.pi * phase))


@dataclass(frozen=True)
class LoadProfile:
    """Engine load torque: a base level plus smooth bumps (Figure 4)."""

    base: float
    bumps: Sequence[LoadBump] = field(default_factory=tuple)

    def value(self, t: float) -> float:
        """Total load torque at time ``t``."""
        return self.base + sum(bump.value(t) for bump in self.bumps)

    def samples(self, sample_time: float = SAMPLE_TIME, steps: int = ITERATIONS) -> List[float]:
        """The profile sampled at the experiment's iteration instants."""
        return [self.value(k * sample_time) for k in range(steps)]


def paper_reference_profile() -> ReferenceProfile:
    """Figure 3's reference: 2000 rpm, stepping to 3000 rpm at t = 5 s."""
    return ReferenceProfile(step_times=(0.0, 5.0), levels=(2000.0, 3000.0))


def paper_load_profile() -> LoadProfile:
    """Figure 4's load: a base load with bumps in 3 < t < 4 and 7 < t < 8."""
    return LoadProfile(
        base=20.0,
        bumps=(
            LoadBump(start=3.0, end=4.0, magnitude=60.0),
            LoadBump(start=7.0, end=8.0, magnitude=60.0),
        ),
    )
