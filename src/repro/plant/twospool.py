"""A two-spool engine plant — the MIMO future-work testbed (§5).

The paper's conclusions point at jet-engine controllers as the next
target for executable assertions + best-effort recovery.  This module
provides a small two-spool gas-generator abstraction: two rotor speeds
(fan ``N1`` and core ``N2``), each driven by its own actuator command,
with first-order rotor dynamics and cross-coupling (core torque drags
the fan and vice versa), plus an external bleed/load disturbance per
spool.  It mirrors :class:`repro.plant.EngineModel`'s API so the MIMO
closed-loop machinery and SWIFI campaigns plug straight in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import SAMPLE_TIME, THROTTLE_MAX, THROTTLE_MIN
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TwoSpoolParameters:
    """Physical parameters of the two-spool plant (simulation units).

    Attributes:
        gain1 / gain2: steady-state rpm per actuator degree per spool.
        coupling: fraction of each spool's drive that leaks into the
            other spool (aerodynamic coupling through the gas path).
        tau1 / tau2: rotor time constants in seconds (the fan is
            heavier, hence slower).
        sample_time: discretisation step (forward Euler).
    """

    gain1: float = 180.0
    gain2: float = 260.0
    coupling: float = 0.06
    tau1: float = 0.5
    tau2: float = 0.3
    sample_time: float = SAMPLE_TIME

    def __post_init__(self) -> None:
        for name in ("gain1", "gain2", "tau1", "tau2", "sample_time"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"parameter {name} must be positive")
        if not 0.0 <= self.coupling < 0.5:
            raise ConfigurationError("coupling must be in [0, 0.5)")

    def steady_state_commands(
        self, n1: float, n2: float
    ) -> "tuple[float, float]":
        """Actuator commands holding speeds ``(n1, n2)`` at zero load.

        Solves the 2x2 steady-state system including the coupling terms.
        """
        c = self.coupling
        # n1 = g1*u1 + c*g2*u2 ; n2 = g2*u2 + c*g1*u1
        det = self.gain1 * self.gain2 * (1.0 - c * c)
        u1 = (n1 * self.gain2 - c * self.gain2 * n2) / det
        u2 = (n2 * self.gain1 - c * self.gain1 * n1) / det
        return u1, u2


class TwoSpoolEngine:
    """Discrete-time two-spool plant: commands + loads -> rotor speeds."""

    def __init__(self, params: TwoSpoolParameters = TwoSpoolParameters()):
        self.params = params
        self.speeds: List[float] = [0.0, 0.0]

    def reset(self, n1: float = 0.0, n2: float = 0.0) -> None:
        """Set the rotor speeds (e.g. to a steady operating point)."""
        self.speeds = [float(n1), float(n2)]

    def step(
        self, commands: Sequence[float], loads: Optional[Sequence[float]] = None
    ) -> List[float]:
        """Advance one sample.

        Args:
            commands: the two actuator commands (clamped to the
                actuator range 0–70, as with the throttle).
            loads: optional per-spool load disturbances in rpm-equivalents.

        Returns:
            The new rotor speeds ``[N1, N2]``.
        """
        if len(commands) != 2:
            raise ConfigurationError("two actuator commands required")
        if loads is None:
            loads = (0.0, 0.0)
        if len(loads) != 2:
            raise ConfigurationError("two load values required")
        p = self.params
        u1 = min(max(commands[0], THROTTLE_MIN), THROTTLE_MAX)
        u2 = min(max(commands[1], THROTTLE_MIN), THROTTLE_MAX)
        n1, n2 = self.speeds
        target1 = p.gain1 * u1 + p.coupling * p.gain2 * u2 - loads[0]
        target2 = p.gain2 * u2 + p.coupling * p.gain1 * u1 - loads[1]
        n1 += (p.sample_time / p.tau1) * (target1 - n1)
        n2 += (p.sample_time / p.tau2) * (target2 - n2)
        self.speeds = [max(n1, 0.0), max(n2, 0.0)]
        return list(self.speeds)

    # -- state access ---------------------------------------------------------
    def state_vector(self) -> List[float]:
        """The rotor speeds as a flat list."""
        return list(self.speeds)

    def set_state_vector(self, state: Sequence[float]) -> None:
        """Restore state captured by :meth:`state_vector`."""
        if len(state) != 2:
            raise ConfigurationError("two-spool state has two entries")
        self.speeds = [float(state[0]), float(state[1])]


def run_mimo_loop(
    controller,
    references: Sequence[float],
    iterations: int = 650,
    engine: Optional[TwoSpoolEngine] = None,
    fault_hook=None,
):
    """Run a vector controller against the two-spool plant.

    Args:
        controller: anything with ``step_vector(refs, measurements)`` or
            a :class:`repro.core.ControllerGuard` (``guarded_step``).
        references: the two speed targets (held constant).
        iterations: samples to run.
        engine: plant instance (fresh one by default).
        fault_hook: optional callable ``(k, controller)`` invoked before
            each iteration — the SWIFI injection point.

    Returns:
        ``(outputs, speeds)``: per-iteration command pairs and speed pairs.
    """
    engine = engine if engine is not None else TwoSpoolEngine()
    measurements = list(engine.speeds)
    outputs: List[List[float]] = []
    speeds: List[List[float]] = []
    for k in range(iterations):
        if fault_hook is not None:
            fault_hook(k, controller)
        if hasattr(controller, "guarded_step"):
            commands = list(controller.guarded_step(references, measurements).outputs)
        else:
            commands = list(controller.step_vector(references, measurements))
        measurements = engine.step(commands)
        outputs.append(commands)
        speeds.append(list(measurements))
    return outputs, speeds
