"""The engine model (the controlled object of Figure 1).

The model is a standard two-state engine-speed abstraction:

* *intake dynamics*: the torque-producing airflow follows the throttle
  angle through a first-order lag with time constant ``tau_intake`` —
  filling of the intake manifold;
* *rotational dynamics*: inertia ``J`` integrates produced torque minus
  viscous friction ``b * omega`` minus the external load torque.

With the default parameters the DC gain is 200 rpm per throttle degree, so
2000 rpm corresponds to roughly 10 degrees of throttle and 3000 rpm to
15 degrees under base load — matching the fault-free output level visible
in the paper's Figures 5 and 10.

The same model is available in two forms: :class:`EngineModel` (a direct
discrete-time implementation used in campaigns, where speed matters) and
:func:`build_engine_diagram` (the identical dynamics expressed as a
:mod:`repro.blocks` diagram, the shape of the Simulink environment model).
Their equivalence is checked by a test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.blocks.block import Port
from repro.blocks.diagram import Diagram
from repro.blocks.library import Gain, Inport, Outport, Saturation, Scope, Sum, UnitDelay
from repro.errors import ConfigurationError
from repro.plant.profiles import SAMPLE_TIME, THROTTLE_MAX, THROTTLE_MIN


@dataclass(frozen=True)
class EngineParameters:
    """Physical parameters of the engine model (simulation units).

    Attributes:
        torque_gain: produced torque per degree of (lagged) throttle.
        friction: viscous friction torque per rpm.
        inertia: rotational inertia (torque units per rpm/s).
        tau_intake: intake-manifold time constant in seconds.
        sample_time: discretisation step in seconds (forward Euler).
    """

    torque_gain: float = 10.0
    friction: float = 0.05
    inertia: float = 0.015
    tau_intake: float = 0.15
    sample_time: float = SAMPLE_TIME

    def __post_init__(self) -> None:
        for name in ("torque_gain", "friction", "inertia", "tau_intake", "sample_time"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"engine parameter {name} must be positive")

    def dc_gain(self) -> float:
        """Steady-state rpm per throttle degree at zero load."""
        return self.torque_gain / self.friction

    def steady_state_throttle(self, speed: float, load: float = 0.0) -> float:
        """Throttle angle holding ``speed`` rpm against ``load`` torque."""
        return (self.friction * speed + load) / self.torque_gain


class EngineModel:
    """Discrete-time engine: throttle angle + load torque -> speed (rpm).

    State: ``airflow`` (lagged throttle, degrees-equivalent) and ``speed``
    (rpm).  :meth:`step` advances one sample interval with forward Euler,
    which is stable at the paper's 15.4 ms step for the default
    parameters.
    """

    def __init__(self, params: EngineParameters = EngineParameters()):
        self.params = params
        self.airflow = 0.0
        self.speed = 0.0

    def reset(self, speed: float = 0.0, load: float = 0.0) -> None:
        """Reset to the steady state at ``speed`` rpm under ``load``.

        Passing the defaults resets to standstill.
        """
        self.speed = float(speed)
        self.airflow = (
            0.0 if speed == 0.0 and load == 0.0
            else self.params.steady_state_throttle(speed, load)
        )

    def step(self, throttle: float, load: float) -> float:
        """Advance one sample with the given throttle angle and load torque.

        The throttle is clamped to the physical range 0–70 degrees — the
        actuator cannot exceed it regardless of what the controller
        commands.  Returns the new engine speed in rpm (never negative:
        the engine does not spin backwards under load).
        """
        p = self.params
        angle = min(max(throttle, THROTTLE_MIN), THROTTLE_MAX)
        # True forward Euler: both state derivatives use the old state.
        torque = p.torque_gain * self.airflow - p.friction * self.speed - load
        self.airflow += (p.sample_time / p.tau_intake) * (angle - self.airflow)
        self.speed += (p.sample_time / p.inertia) * torque
        if self.speed < 0.0:
            self.speed = 0.0
        return self.speed

    # -- state access (used by campaign checkpointing) --------------------
    def state_vector(self) -> List[float]:
        """The engine state as a flat list ``[airflow, speed]``."""
        return [self.airflow, self.speed]

    def set_state_vector(self, state: List[float]) -> None:
        """Restore state captured by :meth:`state_vector`."""
        self.airflow, self.speed = state


def build_engine_diagram(params: EngineParameters = EngineParameters()) -> Diagram:
    """The engine expressed as a block diagram (Figure 1 environment model).

    Inports: ``throttle`` (degrees), ``load`` (torque).  Outport and scope:
    ``speed`` (rpm).  The forward-Euler integrations are built from
    UnitDelay + Gain + Sum blocks, so the diagram's step-for-step output
    equals :class:`EngineModel` exactly.
    """
    p = params
    d = Diagram()
    throttle = d.add(Inport("throttle"))
    load = d.add(Inport("load"))
    limiter = d.add(Saturation("throttle_limit", THROTTLE_MIN, THROTTLE_MAX))

    # Intake lag: q(k+1) = q(k) + T/tau * (angle - q(k))
    q_delay = d.add(UnitDelay("airflow_state", initial=0.0))
    q_err = d.add(Sum("airflow_err", "+-"))
    q_gain = d.add(Gain("airflow_gain", p.sample_time / p.tau_intake))
    q_next = d.add(Sum("airflow_next", "++"))

    # Torque balance: torque = Kt*q - b*omega - load
    torque_gain = d.add(Gain("torque_gain", p.torque_gain))
    friction_gain = d.add(Gain("friction_gain", p.friction))
    torque = d.add(Sum("torque", "+--"))

    # Speed integration: omega(k+1) = omega(k) + T/J * torque
    w_delay = d.add(UnitDelay("speed_state", initial=0.0))
    w_gain = d.add(Gain("speed_gain", p.sample_time / p.inertia))
    w_next = d.add(Sum("speed_next", "++"))
    w_floor = d.add(Saturation("speed_floor", 0.0, float("inf")))

    speed_out = d.add(Outport("speed"))
    speed_scope = d.add(Scope("speed_scope"))

    d.connect(throttle.out_port(), limiter.in_port())
    d.connect(limiter.out_port(), q_err.in_port("in1"))
    d.connect(q_delay.out_port(), q_err.in_port("in2"))
    d.connect(q_err.out_port(), q_gain.in_port())
    d.connect(q_delay.out_port(), q_next.in_port("in1"))
    d.connect(q_gain.out_port(), q_next.in_port("in2"))
    d.connect(q_next.out_port(), q_delay.in_port())

    d.connect(q_delay.out_port(), torque_gain.in_port())
    d.connect(w_delay.out_port(), friction_gain.in_port())
    d.connect(torque_gain.out_port(), torque.in_port("in1"))
    d.connect(friction_gain.out_port(), torque.in_port("in2"))
    d.connect(load.out_port(), torque.in_port("in3"))

    d.connect(torque.out_port(), w_gain.in_port())
    d.connect(w_delay.out_port(), w_next.in_port("in1"))
    d.connect(w_gain.out_port(), w_next.in_port("in2"))
    d.connect(w_next.out_port(), w_floor.in_port())
    d.connect(w_floor.out_port(), w_delay.in_port())

    d.connect(w_floor.out_port(), speed_out.in_port())
    d.connect(w_floor.out_port(), speed_scope.in_port())
    d.schedule()
    return d
