"""The paper's Figures 1 and 2 as executable block diagrams.

Figure 2 is the PI controller block: error sum, proportional gain,
discrete integrator with anti-windup (integration is cut off when the
unlimited output is outside the throttle range and the error pushes it
further out), and the output limiter.  Figure 1 is the complete engine
control system: reference step, the PI controller block, the engine and
the load disturbance.

Both diagrams are *bit-equivalent* to the imperative implementations
(:class:`repro.control.PIController`, :class:`repro.plant.EngineModel`)
— the equivalence is covered by tests — so the block-diagram substrate
demonstrably expresses the same model the paper generated its code from.
"""

from __future__ import annotations

from typing import Optional

from repro.blocks.diagram import Diagram
from repro.blocks.library import (
    Constant,
    Gain,
    Inport,
    LogicalOperator,
    Outport,
    Product,
    RelationalOperator,
    Saturation,
    Scope,
    SourceFunction,
    Step,
    Sum,
    Switch,
    UnitDelay,
)
from repro.control.base import ControllerGains
from repro.plant.engine import EngineParameters
from repro.plant.profiles import (
    LoadProfile,
    ReferenceProfile,
    THROTTLE_MAX,
    THROTTLE_MIN,
    paper_load_profile,
    paper_reference_profile,
)


def add_pi_controller_blocks(
    diagram: Diagram,
    gains: ControllerGains = ControllerGains(),
    prefix: str = "pi",
    initial_state: float = 0.0,
) -> None:
    """Wire the Figure 2 PI controller into ``diagram``.

    Expects two externally driven signals named ``{prefix}_r`` and
    ``{prefix}_y`` (add them as Inports or connect the ports yourself);
    produces the limited output at ``{prefix}_u_lim`` (a Gain(1) block
    whose out port is the controller output).
    """
    p = prefix
    d = diagram
    error = d.add(Sum(f"{p}_error", "+-"))
    kp = d.add(Gain(f"{p}_kp", gains.kp))
    x_state = d.add(UnitDelay(f"{p}_x", initial=initial_state))
    u = d.add(Sum(f"{p}_u", "++"))
    u_lim = d.add(Saturation(f"{p}_u_lim", THROTTLE_MIN, THROTTLE_MAX))

    # Anti-windup condition: (u > max and e > 0) or (u < min and e < 0).
    umax = d.add(Constant(f"{p}_umax", THROTTLE_MAX))
    umin = d.add(Constant(f"{p}_umin", THROTTLE_MIN))
    zero = d.add(Constant(f"{p}_zero", 0.0))
    over = d.add(RelationalOperator(f"{p}_over", ">"))
    under = d.add(RelationalOperator(f"{p}_under", "<"))
    e_pos = d.add(RelationalOperator(f"{p}_e_pos", ">"))
    e_neg = d.add(RelationalOperator(f"{p}_e_neg", "<"))
    windup_hi = d.add(LogicalOperator(f"{p}_windup_hi", "and"))
    windup_lo = d.add(LogicalOperator(f"{p}_windup_lo", "and"))
    windup = d.add(LogicalOperator(f"{p}_windup", "or"))

    # Effective integral gain: 0 when winding up, Ki otherwise.
    ki_const = d.add(Constant(f"{p}_ki", gains.ki))
    ki_zero = d.add(Constant(f"{p}_ki_zero", 0.0))
    ki_eff = d.add(Switch(f"{p}_ki_eff"))

    # x(k+1) = x(k) + (T * e) * ki_eff — grouped exactly like the
    # imperative controller so the runs stay bit-identical.
    dx = d.add(Gain(f"{p}_dx", gains.sample_time))
    e_ki = d.add(Product(f"{p}_e_ki"))
    x_next = d.add(Sum(f"{p}_x_next", "++"))

    d.connect(error.out_port(), kp.in_port())
    d.connect(kp.out_port(), u.in_port("in1"))
    d.connect(x_state.out_port(), u.in_port("in2"))
    d.connect(u.out_port(), u_lim.in_port())

    d.connect(u.out_port(), over.in_port("in1"))
    d.connect(umax.out_port(), over.in_port("in2"))
    d.connect(u.out_port(), under.in_port("in1"))
    d.connect(umin.out_port(), under.in_port("in2"))
    d.connect(error.out_port(), e_pos.in_port("in1"))
    d.connect(zero.out_port(), e_pos.in_port("in2"))
    d.connect(error.out_port(), e_neg.in_port("in1"))
    d.connect(zero.out_port(), e_neg.in_port("in2"))
    d.connect(over.out_port(), windup_hi.in_port("in1"))
    d.connect(e_pos.out_port(), windup_hi.in_port("in2"))
    d.connect(under.out_port(), windup_lo.in_port("in1"))
    d.connect(e_neg.out_port(), windup_lo.in_port("in2"))
    d.connect(windup_hi.out_port(), windup.in_port("in1"))
    d.connect(windup_lo.out_port(), windup.in_port("in2"))

    d.connect(ki_zero.out_port(), ki_eff.in_port("in1"))
    d.connect(windup.out_port(), ki_eff.in_port("in2"))
    d.connect(ki_const.out_port(), ki_eff.in_port("in3"))

    d.connect(error.out_port(), dx.in_port())
    d.connect(dx.out_port(), e_ki.in_port("in1"))
    d.connect(ki_eff.out_port(), e_ki.in_port("in2"))
    d.connect(x_state.out_port(), x_next.in_port("in1"))
    d.connect(e_ki.out_port(), x_next.in_port("in2"))
    d.connect(x_next.out_port(), x_state.in_port())


def build_pi_controller_diagram(
    gains: ControllerGains = ControllerGains(),
    initial_state: float = 0.0,
) -> Diagram:
    """Figure 2 on its own, with ``r``/``y`` Inports and a ``u`` Outport."""
    d = Diagram()
    r = d.add(Inport("r"))
    y = d.add(Inport("y"))
    out = d.add(Outport("u"))
    add_pi_controller_blocks(d, gains, prefix="pi", initial_state=initial_state)
    d.connect(r.out_port(), d.block("pi_error").in_port("in1"))
    d.connect(y.out_port(), d.block("pi_error").in_port("in2"))
    d.connect(d.block("pi_u_lim").out_port(), out.in_port())
    d.schedule()
    return d


def build_figure1_diagram(
    gains: ControllerGains = ControllerGains(),
    params: EngineParameters = EngineParameters(),
    reference: Optional[ReferenceProfile] = None,
    load: Optional[LoadProfile] = None,
    warm_start: bool = True,
) -> Diagram:
    """The complete Figure 1 system: reference, PI block, engine, load.

    Scopes: ``speed_scope`` (Figure 3's y), ``throttle_scope``
    (Figure 5's u_lim).  With ``warm_start`` the engine and controller
    states start at the 2000 rpm operating point, as in the paper's runs.
    """
    reference = reference if reference is not None else paper_reference_profile()
    load = load if load is not None else paper_load_profile()
    initial_speed = reference.value(0.0) if warm_start else 0.0
    steady_throttle = (
        params.steady_state_throttle(initial_speed, load.base) if warm_start else 0.0
    )

    d = Diagram()
    ref_src = d.add(SourceFunction("reference", reference.value))
    load_src = d.add(SourceFunction("load", load.value))
    add_pi_controller_blocks(d, gains, prefix="pi", initial_state=steady_throttle)

    # Engine (same forward-Euler structure as EngineModel).
    limiter = d.add(Saturation("throttle_limit", THROTTLE_MIN, THROTTLE_MAX))
    q_delay = d.add(UnitDelay("airflow_state", initial=steady_throttle))
    q_err = d.add(Sum("airflow_err", "+-"))
    q_gain = d.add(Gain("airflow_gain", params.sample_time / params.tau_intake))
    q_next = d.add(Sum("airflow_next", "++"))
    torque_gain = d.add(Gain("torque_gain", params.torque_gain))
    friction_gain = d.add(Gain("friction_gain", params.friction))
    torque = d.add(Sum("torque", "+--"))
    w_delay = d.add(UnitDelay("speed_state", initial=initial_speed))
    w_gain = d.add(Gain("speed_gain", params.sample_time / params.inertia))
    w_next = d.add(Sum("speed_next", "++"))
    w_floor = d.add(Saturation("speed_floor", 0.0, float("inf")))

    speed_scope = d.add(Scope("speed_scope"))
    throttle_scope = d.add(Scope("throttle_scope"))
    reference_scope = d.add(Scope("reference_scope"))

    # Controller wiring.
    d.connect(ref_src.out_port(), d.block("pi_error").in_port("in1"))
    d.connect(w_delay.out_port(), d.block("pi_error").in_port("in2"))

    # Engine wiring.
    d.connect(d.block("pi_u_lim").out_port(), limiter.in_port())
    d.connect(limiter.out_port(), q_err.in_port("in1"))
    d.connect(q_delay.out_port(), q_err.in_port("in2"))
    d.connect(q_err.out_port(), q_gain.in_port())
    d.connect(q_delay.out_port(), q_next.in_port("in1"))
    d.connect(q_gain.out_port(), q_next.in_port("in2"))
    d.connect(q_next.out_port(), q_delay.in_port())
    d.connect(q_delay.out_port(), torque_gain.in_port())
    d.connect(w_delay.out_port(), friction_gain.in_port())
    d.connect(torque_gain.out_port(), torque.in_port("in1"))
    d.connect(friction_gain.out_port(), torque.in_port("in2"))
    d.connect(load_src.out_port(), torque.in_port("in3"))
    d.connect(torque.out_port(), w_gain.in_port())
    d.connect(w_delay.out_port(), w_next.in_port("in1"))
    d.connect(w_gain.out_port(), w_next.in_port("in2"))
    d.connect(w_next.out_port(), w_floor.in_port())
    d.connect(w_floor.out_port(), w_delay.in_port())

    # Observation.
    d.connect(w_delay.out_port(), speed_scope.in_port())
    d.connect(d.block("pi_u_lim").out_port(), throttle_scope.in_port())
    d.connect(ref_src.out_port(), reference_scope.in_port())
    d.schedule()
    return d
