"""Closed-loop runner: controller + engine + profiles, with trace capture.

Each iteration mirrors the paper's data exchange (§3.3.2): the environment
supplies the reference ``r(k)`` and the measured speed ``y(k)``, the
controller produces the limited throttle command ``u_lim(k)``, and the
engine advances one sample under the current load torque.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

import numpy as np

from repro.plant.engine import EngineModel
from repro.plant.profiles import (
    ITERATIONS,
    LoadProfile,
    ReferenceProfile,
    paper_load_profile,
    paper_reference_profile,
)


class SpeedController(Protocol):
    """Anything that can act as the speed controller in the loop."""

    def step(self, reference: float, measured: float) -> float:
        """One control iteration: returns the limited throttle command."""
        ...

    def reset(self) -> None:
        """Restore the controller's initial state."""
        ...


@dataclass
class LoopTrace:
    """Recorded signals of one closed-loop run (arrays of equal length).

    Attributes:
        times: sample instants (s).
        reference: reference speed r(k) (rpm).
        speed: measured engine speed y(k) (rpm).
        load: engine load torque at each sample.
        throttle: controller output u_lim(k) (degrees).
    """

    times: np.ndarray
    reference: np.ndarray
    speed: np.ndarray
    load: np.ndarray
    throttle: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


class ClosedLoop:
    """Run a controller against the engine under the paper's profiles."""

    def __init__(
        self,
        controller: SpeedController,
        engine: Optional[EngineModel] = None,
        reference: Optional[ReferenceProfile] = None,
        load: Optional[LoadProfile] = None,
    ):
        self.controller = controller
        self.engine = engine if engine is not None else EngineModel()
        self.reference = reference if reference is not None else paper_reference_profile()
        self.load = load if load is not None else paper_load_profile()

    def run(self, iterations: int = ITERATIONS, warm_start: bool = True) -> LoopTrace:
        """Execute ``iterations`` control iterations and record all signals.

        Args:
            iterations: number of control samples (paper: 650).
            warm_start: start the engine at the steady state for the
                initial reference under base load, as in Figure 3 where the
                run begins already tracking 2000 rpm.  ``False`` starts
                from standstill.

        Returns:
            The recorded :class:`LoopTrace`.
        """
        self.controller.reset()
        initial_reference = self.reference.value(0.0)
        if warm_start:
            self.engine.reset(speed=initial_reference, load=self.load.base)
            if hasattr(self.controller, "warm_start"):
                steady_throttle = self.engine.params.steady_state_throttle(
                    initial_reference, self.load.base
                )
                self.controller.warm_start(
                    initial_reference, initial_reference, steady_throttle
                )
        else:
            self.engine.reset()

        sample_time = self.engine.params.sample_time
        times: List[float] = []
        refs: List[float] = []
        speeds: List[float] = []
        loads: List[float] = []
        throttles: List[float] = []
        for k in range(iterations):
            t = k * sample_time
            r = self.reference.value(t)
            y = self.engine.speed
            load = self.load.value(t)
            u_lim = self.controller.step(r, y)
            self.engine.step(u_lim, load)
            times.append(t)
            refs.append(r)
            speeds.append(y)
            loads.append(load)
            throttles.append(u_lim)
        return LoopTrace(
            times=np.asarray(times),
            reference=np.asarray(refs),
            speed=np.asarray(speeds),
            load=np.asarray(loads),
            throttle=np.asarray(throttles),
        )
