"""Command-line interface: campaigns, figures, listings, propagation.

Usage (also available as ``python -m repro``):

.. code-block:: none

    repro campaign  --algorithm II --faults 500 [--database results.db]
                    [--workers 4] [--events events.jsonl] [--metrics]
                    [--metrics-snapshot metrics.json]
                    [--prune] [--validate-pruning]
                    [--resume CAMPAIGN_ID] [--abort-after N] [--chaos JSON]
    repro obs       [summary] --events events.jsonl [--events more.jsonl]
    repro obs       status --events events.jsonl [--json]
    repro obs       watch  --events events.jsonl [--interval 2] [--once] [--json]
    repro obs       export [--events events.jsonl] [--snapshot metrics.json]
                    [--format prometheus|json] [--output FILE]
    repro serve     --root runs/ [--workers N] [--once] [--ttl 30]
    repro submit    --root runs/ --algorithm II --faults 500
    repro status    --root runs/ [--campaign ID] [--json]
    repro cancel    --root runs/ --campaign ID
    repro compare   --faults 500
    repro figure    --name fig03|fig04|fig05
    repro listing   --algorithm I
    repro propagate --element line3.data --bit 30 --time 12000

Every command is deterministic for a given ``--seed``.

Exit codes for interrupted campaigns distinguish who stopped the run:
130 for operator Ctrl-C (SIGINT), 143 for SIGTERM, and 75
(``EX_TEMPFAIL``) for queue-driven aborts — a cancel request or a
revoked lease — which a wrapper may safely retry or resume.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import render_comparison_table, render_outcome_table
from repro.analysis.asciiplot import ascii_chart
from repro.control import PIController
from repro.errors import (
    CampaignAborted,
    CampaignError,
    DatabaseError,
    ObservabilityError,
    ServiceError,
)
from repro.faults.models import FaultDescriptor, FaultTarget
from repro.goofi import (
    CampaignConfig,
    CampaignDatabase,
    ScifiCampaign,
    TargetSystem,
    trace_propagation,
)
from repro.obs import (
    CampaignFollower,
    CampaignStatusReducer,
    DEFAULT_STALL_AFTER,
    MetricsRegistry,
    Telemetry,
    manifest_path_for,
    prometheus_text,
    read_events,
    read_manifest,
    read_snapshot,
    registry_from_events,
    render_events_summary,
    render_status,
    status_metrics,
)
from repro.plant import ClosedLoop, SAMPLE_TIME, paper_load_profile
from repro.thor.disassembler import disassemble_program
from repro.thor.scanchain import CACHE_PARTITION, REGISTER_PARTITION
from repro.workloads import compile_algorithm_i, compile_algorithm_ii


def _workload(algorithm: str):
    if algorithm.upper() in ("I", "1"):
        return compile_algorithm_i(), "Algorithm I"
    if algorithm.upper() in ("II", "2"):
        return compile_algorithm_ii(), "Algorithm II"
    raise SystemExit(f"unknown algorithm {algorithm!r} (use I or II)")


def _config_from_args(args: argparse.Namespace) -> CampaignConfig:
    """Build a campaign configuration from the shared config flags."""
    workload, name = _workload(args.algorithm)
    chaos = None
    if args.chaos:
        import tempfile

        from repro.goofi import ChaosSpec

        chaos = ChaosSpec.from_json(
            args.chaos, tempfile.mkdtemp(prefix="repro-chaos-")
        )
    return CampaignConfig(
        workload=workload,
        name=name,
        faults=args.faults,
        seed=args.seed,
        iterations=args.iterations,
        partitions=args.partitions,
        prune=args.prune,
        collapse=args.collapse,
        batch_size=args.batch_size,
        delta_dataplane=args.delta_dataplane,
        locality_sort=args.locality_sort,
        chaos=chaos,
    )


#: ``CampaignAborted.reason`` → process exit status.  Only operator
#: interrupts get the conventional signal codes; queue-driven aborts
#: (cancel requested, lease revoked) exit 75, BSD's ``EX_TEMPFAIL``.
_ABORT_EXIT_CODES = {"sigint": 130, "sigterm": 143}
_ABORT_EXIT_DEFAULT = 75


def _cmd_campaign(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if args.validate_pruning:
        from repro.goofi.pruning import validate_pruning

        report = validate_pruning(config, workers=args.workers)
        print(report.render())
        return 0 if report.ok else 1
    if args.validate_collapse:
        from repro.goofi.pruning import validate_collapse

        report = validate_collapse(config, workers=args.workers)
        print(report.render())
        return 0 if report.ok else 1
    if args.resume is not None and not args.database:
        raise SystemExit("--resume requires --database")
    database = CampaignDatabase(args.database) if args.database else None
    telemetry = None
    if args.events or args.metrics or args.metrics_snapshot:
        try:
            # A resumed campaign appends to the original event log so the
            # combined file carries the run's full history.
            telemetry = Telemetry(
                events_path=args.events,
                append=args.resume is not None,
                snapshot_path=args.metrics_snapshot,
            )
        except OSError as exc:
            raise SystemExit(f"cannot write {args.events}: {exc.strerror or exc}")

    def progress(done, total, outcome):
        if args.verbose and (done % 50 == 0 or done == total):
            print(f"  {done}/{total} ({outcome.category.value})", file=sys.stderr)
        if args.abort_after is not None and done >= args.abort_after:
            # The tests' kill switch: behaves exactly like Ctrl-C at
            # this point of the campaign.
            raise KeyboardInterrupt

    campaign = ScifiCampaign(config, database=database)
    try:
        result = campaign.run(
            progress=progress,
            workers=args.workers,
            telemetry=telemetry,
            resume_from=args.resume,
        )
    except CampaignAborted as exc:
        # Streamed results were flushed and the campaign row is marked
        # aborted.  The exit code says who stopped the run: operator
        # SIGINT/SIGTERM get the conventional 128+signal codes, while a
        # queue-driven abort (cancel, revoked lease) exits 75 so
        # wrappers can tell the two apart and retry/resume safely.
        print(f"campaign aborted ({exc.reason}): {exc}", file=sys.stderr)
        if exc.campaign_id is not None and args.database:
            print(
                f"resume with: repro campaign ... --database {args.database}"
                f" --resume {exc.campaign_id}",
                file=sys.stderr,
            )
        return _ABORT_EXIT_CODES.get(exc.reason, _ABORT_EXIT_DEFAULT)
    except (CampaignError, DatabaseError) as exc:
        # Resume refusals (fingerprint mismatch, unknown campaign id)
        # are user errors, not crashes.
        raise SystemExit(str(exc))
    finally:
        if telemetry is not None:
            telemetry.close()
        if database is not None:
            database.close()
    if args.dossier:
        from repro.analysis import campaign_dossier

        print(campaign_dossier(result))
    else:
        print(render_outcome_table(result.summary()))
        severe = result.summary().severe_share_of_value_failures()
        print(f"severe share of value failures: {severe.format()}")
    if telemetry is not None:
        if args.metrics:
            print()
            print(telemetry.metrics.render())
            if telemetry.tracer is not None:
                print()
                print(telemetry.tracer.render())
        if args.events:
            print(f"events written to {args.events}")
        if args.metrics_snapshot:
            print(f"metrics snapshot at {args.metrics_snapshot}")
    if database is not None:
        print(f"stored in {args.database}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CampaignService

    if args.detach:
        import subprocess

        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--root",
            args.root,
            "--workers",
            "1",
            "--ttl",
            str(args.ttl),
            "--poll",
            str(args.poll),
        ]
        if args.once:
            command.append("--once")
        pids = []
        for index in range(args.workers):
            worker_id = args.worker_id or f"serve-{os.getpid()}"
            child = subprocess.Popen(
                command + ["--worker-id", f"{worker_id}-{index}"],
                start_new_session=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            pids.append(child.pid)
        print(
            f"started {len(pids)} detached worker(s) on {args.root}:"
            f" pids {' '.join(str(p) for p in pids)}"
        )
        return 0

    worker_id = args.worker_id or f"serve-{os.getpid()}"

    def _loop(name: str, counts: List[int], slot: int) -> None:
        # Each worker keeps its own service handle: SQLite connections
        # and campaign databases never cross threads.
        with CampaignService(args.root) as service:
            try:
                counts[slot] = service.serve(
                    name,
                    ttl=args.ttl,
                    poll=args.poll,
                    once=args.once,
                    kill_after=args.kill_after,
                )
            except CampaignAborted:
                # The lease was already released; the campaign resumes
                # under the next worker to claim it.
                pass

    if args.workers <= 1:
        with CampaignService(args.root) as service:
            try:
                resolved = service.serve(
                    worker_id,
                    ttl=args.ttl,
                    poll=args.poll,
                    once=args.once,
                    kill_after=args.kill_after,
                )
            except CampaignAborted as exc:
                print(f"worker interrupted ({exc.reason}): {exc}", file=sys.stderr)
                return _ABORT_EXIT_CODES.get(exc.reason, _ABORT_EXIT_DEFAULT)
        print(f"{worker_id}: resolved {resolved} campaign job(s)")
        return 0

    import threading

    counts = [0] * args.workers
    threads = [
        threading.Thread(
            target=_loop, args=(f"{worker_id}-{index}", counts, index)
        )
        for index in range(args.workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(f"{worker_id}: resolved {sum(counts)} campaign job(s)")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import CampaignService

    config = _config_from_args(args)
    with CampaignService(args.root) as service:
        campaign_id = service.submit_campaign(
            config, workers=args.campaign_workers
        )
    print(f"campaign {campaign_id} queued under {args.root}")
    print(f"watch with: repro status --root {args.root} --campaign {campaign_id}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import CampaignService, service_status_lines

    with CampaignService(args.root) as service:
        if args.campaign is None:
            if args.json:
                print(
                    json.dumps(
                        {
                            "campaigns": service.list_campaigns(),
                            "stale_leases": service.queue.stale_leases(),
                        },
                        sort_keys=True,
                    )
                )
            else:
                for line in service_status_lines(service):
                    print(line)
                stale = service.queue.stale_leases()
                if stale:
                    print(f"{stale} stale lease(s) expired over the queue lifetime")
            return 0
        try:
            state, snapshot = service.status_snapshot(args.campaign)
        except ServiceError as exc:
            raise SystemExit(str(exc))
        if args.json:
            print(
                json.dumps(
                    {
                        "campaign_id": args.campaign,
                        "job": state,
                        "campaign": (
                            snapshot.to_dict() if snapshot is not None else None
                        ),
                    },
                    sort_keys=True,
                )
            )
            return 0
        lease = state.get("lease")
        holder = ""
        if isinstance(lease, dict):
            stale = " (stale)" if lease.get("stale") else ""
            holder = f", leased by {lease['worker']}{stale}"
        print(f"campaign {args.campaign}: {state['status']}{holder}")
        if state.get("expiries"):
            print(f"lease expiries so far: {state['expiries']}")
        if snapshot is not None:
            print()
            print(render_status(snapshot))
        return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import CampaignService

    with CampaignService(args.root) as service:
        try:
            status = service.cancel(args.campaign)
        except ServiceError as exc:
            raise SystemExit(str(exc))
    print(f"campaign {args.campaign}: {status}")
    if status not in ("cancelled",):
        print(
            "cancel requested; the leasing worker aborts at its next heartbeat",
        )
    return 0


def _expand_event_paths(patterns: List[str]) -> List[str]:
    """Expand ``--events`` values: each may be a path or a glob pattern.

    Unmatched non-glob paths are kept so the subsequent read reports a
    proper "cannot read" error instead of silently summarizing nothing.
    """
    paths: List[str] = []
    for pattern in patterns:
        matches = sorted(glob.glob(pattern))
        paths.extend(matches if matches else [pattern])
    seen = set()
    return [p for p in paths if not (p in seen or seen.add(p))]


def _read_manifest_for(paths: List[str]) -> Optional[Dict[str, object]]:
    """The first readable manifest sidecar among the event paths, if any."""
    for path in paths:
        sidecar = manifest_path_for(path)
        if os.path.exists(sidecar):
            try:
                return read_manifest(sidecar)
            except (OSError, ObservabilityError):
                return None
    return None


def _fold_status(followers, args: argparse.Namespace):
    """One poll across all followers, folded into a status snapshot."""
    reducer = args._reducer
    for follower in followers:
        reducer.fold_many(follower.poll())
    status = reducer.status(now=time.time())
    status.manifest = _read_manifest_for([f.path for f in followers])
    return status


def _print_status(status, as_json: bool) -> None:
    if as_json:
        print(json.dumps(status.to_dict(), sort_keys=True), flush=True)
    else:
        print(render_status(status), flush=True)


def _obs_summary(paths: List[str]) -> int:
    events: List[Dict[str, object]] = []
    for path in paths:
        try:
            events.extend(read_events(path))
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc.strerror or exc}")
        except ObservabilityError as exc:
            raise SystemExit(str(exc))  # read_events errors already carry the path
    try:
        print(render_events_summary(events))
    except ObservabilityError as exc:
        raise SystemExit(f"{', '.join(paths)}: {exc}")
    return 0


def _obs_status(args: argparse.Namespace, paths: List[str]) -> int:
    if not any(os.path.exists(path) for path in paths):
        raise SystemExit(f"cannot read {paths[0]}: no such file")
    followers = [CampaignFollower(path) for path in paths]
    _print_status(_fold_status(followers, args), args.json)
    return 0


def _obs_watch(args: argparse.Namespace, paths: List[str]) -> int:
    followers = [CampaignFollower(path) for path in paths]
    try:
        while True:
            status = _fold_status(followers, args)
            _print_status(status, args.json)
            if args.once or status.state in ("finished", "aborted"):
                return 0
            time.sleep(args.interval)
            if not args.json:
                print(flush=True)  # frame separator
    except KeyboardInterrupt:
        return 130


def _obs_export(args: argparse.Namespace, paths: List[str]) -> int:
    if not paths and not args.snapshot:
        raise SystemExit("repro obs export: provide --events and/or --snapshot")
    registry = MetricsRegistry()
    snapshot_ts = None
    if args.snapshot:
        try:
            snapshot_ts, snapped = read_snapshot(args.snapshot)
        except OSError as exc:
            raise SystemExit(f"cannot read {args.snapshot}: {exc.strerror or exc}")
        except ObservabilityError as exc:
            raise SystemExit(str(exc))
        registry.merge(snapped)
    if paths:
        records: List[Dict[str, object]] = []
        for follower in (CampaignFollower(path) for path in paths):
            records.extend(follower.poll())
        if not args.snapshot:
            # No live registry available: rebuild the classification
            # counters from the stream itself.
            registry.merge(registry_from_events(records))
        reducer = args._reducer
        reducer.fold_many(records)
        registry.merge(status_metrics(reducer.status(now=time.time())))
    if args.format == "prometheus":
        text = prometheus_text(registry)
    else:
        text = (
            json.dumps(
                {"ts": snapshot_ts, "metrics": registry.to_dict()},
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"metrics written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    paths = _expand_event_paths(args.events or [])
    if not paths and args.mode != "export":
        raise SystemExit("repro obs: --events is required")
    # One reducer per invocation, shared by the poll helpers so `watch`
    # folds incrementally across frames.
    args._reducer = CampaignStatusReducer(stall_after=args.stall_after)
    if args.mode == "summary":
        return _obs_summary(paths)
    if args.mode == "status":
        return _obs_status(args, paths)
    if args.mode == "watch":
        return _obs_watch(args, paths)
    return _obs_export(args, paths)


def _cmd_compare(args: argparse.Namespace) -> int:
    summaries = []
    for algorithm in ("I", "II"):
        workload, name = _workload(algorithm)
        config = CampaignConfig(
            workload=workload,
            name=name,
            faults=args.faults,
            seed=args.seed,
            iterations=args.iterations,
        )
        summaries.append(ScifiCampaign(config).run().summary())
    print(render_comparison_table(summaries[0], summaries[1]))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    trace = ClosedLoop(PIController()).run()
    if args.name == "fig03":
        chart = ascii_chart(
            trace.times,
            [trace.reference, trace.speed],
            ["reference r (rpm)", "actual speed y (rpm)"],
            title="Figure 3: reference vs actual engine speed",
            y_min=1500.0,
            y_max=3500.0,
        )
    elif args.name == "fig04":
        load = paper_load_profile()
        times = np.arange(650) * SAMPLE_TIME
        chart = ascii_chart(
            times,
            [np.asarray(load.samples())],
            ["engine load torque"],
            title="Figure 4: engine load",
            y_min=0.0,
        )
    elif args.name == "fig05":
        chart = ascii_chart(
            trace.times,
            [trace.throttle],
            ["u_lim (degrees)"],
            title="Figure 5: fault-free controller output",
            y_min=0.0,
            y_max=70.0,
        )
    else:
        raise SystemExit(f"unknown figure {args.name!r} (fig03/fig04/fig05)")
    print(chart)
    return 0


def _cmd_listing(args: argparse.Namespace) -> int:
    workload, name = _workload(args.algorithm)
    print(f"; {name} — {len(workload.program.code)} instructions")
    for line in disassemble_program(workload.program):
        print(line)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.tcc import compile_program, parse_program

    source = Path(args.source).read_text()
    program = parse_program(source)
    if len(program.inputs) != 2 or len(program.outputs) != 1:
        raise SystemExit(
            "the engine loop drives programs with two inputs (r, y) and "
            f"one output; {program.name!r} has {len(program.inputs)}/"
            f"{len(program.outputs)}"
        )
    compiled = compile_program(program)
    target = TargetSystem(compiled, iterations=args.iterations)
    reference = target.run_reference()
    outputs = np.asarray(reference.outputs)
    times = np.arange(len(outputs)) * SAMPLE_TIME
    print(
        ascii_chart(
            times,
            [outputs],
            [f"{program.name} output"],
            title=f"{args.source}: closed-loop output on the simulated CPU",
        )
    )
    print(
        f"{len(compiled.program.code)} instructions, "
        f"{reference.total_instructions} executed over "
        f"{args.iterations} iterations"
    )
    return 0


def _cmd_propagate(args: argparse.Namespace) -> int:
    workload, _name = _workload(args.algorithm)
    target = TargetSystem(workload, iterations=args.iterations)
    target.run_reference()
    partition = (
        CACHE_PARTITION if args.element.startswith("line") else REGISTER_PARTITION
    )
    fault = FaultDescriptor(
        FaultTarget(partition, args.element, args.bit), args.time
    )
    report = trace_propagation(target, fault, max_instructions=args.max_instructions)
    for line in report.summary_lines():
        print(line)
    return 0


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-configuration flags shared by ``campaign`` and
    ``submit`` (both build a :class:`CampaignConfig` from them)."""
    parser.add_argument("--algorithm", default="I")
    parser.add_argument("--faults", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2001)
    parser.add_argument("--iterations", type=int, default=650)
    parser.add_argument("--partitions", nargs="*", default=None)
    parser.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="skip simulating faults whose outcome the reference run's "
        "def/use access trace proves (see docs/performance.md)",
    )
    parser.add_argument(
        "--collapse",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="simulate one representative per outcome-equivalence class "
        "of live faults and replay its result for the rest "
        "(see docs/performance.md)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="K",
        help="live faults simulated concurrently through one shared "
        "dispatch loop (default: 1, classic one-at-a-time execution)",
    )
    parser.add_argument(
        "--delta-dataplane",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="store the reference as base+deltas and restore experiments "
        "through an undo log of touched words (default: on; "
        "--no-delta-dataplane pins the legacy full-copy plane, see "
        "docs/performance.md)",
    )
    parser.add_argument(
        "--locality-sort",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="execute live faults in injection-time order with "
        "throughput-adaptive worker chunks (default: on; results are "
        "reported in plan order either way)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="JSON",
        help="inject deterministic worker crashes, e.g. "
        "'{\"crashes\": {\"3\": 1}, \"mode\": \"exit\"}' (chaos "
        "testing only; see docs/robustness.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-injection experiments on the simulated control system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run one SCIFI campaign")
    _add_config_arguments(campaign)
    campaign.add_argument("--database", default=None)
    campaign.add_argument(
        "--dossier",
        action="store_true",
        help="print the full analysis dossier instead of the plain table",
    )
    campaign.add_argument("--verbose", action="store_true")
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the injection phase (default: 1, serial)",
    )
    campaign.add_argument(
        "--events",
        default=None,
        help="write JSONL telemetry events to this path",
    )
    campaign.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print the campaign metrics registry",
    )
    campaign.add_argument(
        "--metrics-snapshot",
        default=None,
        metavar="PATH",
        help="periodically dump the metrics registry to this JSON file "
        "so 'repro obs export' can scrape the running campaign",
    )
    campaign.add_argument(
        "--validate-pruning",
        action="store_true",
        help="run the campaign with and without pruning and fail "
        "(exit 1) unless every per-experiment outcome matches",
    )
    campaign.add_argument(
        "--validate-collapse",
        action="store_true",
        help="run the campaign with pruning+collapse+batching and "
        "against the plain baseline; fail (exit 1) unless every "
        "per-experiment outcome matches",
    )
    campaign.add_argument(
        "--resume",
        type=int,
        default=None,
        metavar="CAMPAIGN_ID",
        help="continue the stored campaign with this id (requires "
        "--database); only not-yet-completed experiments are simulated "
        "and the summary is bit-identical to an uninterrupted run "
        "(see docs/robustness.md)",
    )
    campaign.add_argument(
        "--abort-after",
        type=int,
        default=None,
        metavar="N",
        help="interrupt the campaign (as if by Ctrl-C) once N "
        "experiments are done — the crash-safety smoke tests' kill "
        "switch",
    )
    campaign.set_defaults(func=_cmd_campaign)

    serve = sub.add_parser(
        "serve", help="run campaign-service queue workers on a root directory"
    )
    serve.add_argument(
        "--root", required=True, help="service root (queue + campaign dirs)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="queue workers to run (default: 1)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="exit once the queue is drained instead of polling forever",
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle poll interval (default: 0.5)",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="lease time-to-live; a worker that stops heartbeating for "
        "this long loses its campaign to the next worker (default: 30)",
    )
    serve.add_argument(
        "--worker-id",
        default=None,
        help="lease-holder name (default: serve-<pid>)",
    )
    serve.add_argument(
        "--detach",
        action="store_true",
        help="spawn the workers as detached background processes and exit",
    )
    serve.add_argument(
        "--kill-after",
        type=int,
        default=None,
        metavar="N",
        help="SIGKILL this worker once N experiments are done — the "
        "chaos smoke tests' machine-loss switch",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="queue a campaign for the service workers"
    )
    submit.add_argument(
        "--root", required=True, help="service root (queue + campaign dirs)"
    )
    _add_config_arguments(submit)
    submit.add_argument(
        "--campaign-workers",
        type=int,
        default=1,
        metavar="K",
        help="worker processes the campaign's injection phase uses "
        "(default: 1, serial)",
    )
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="queue + live progress of service campaigns"
    )
    status.add_argument(
        "--root", required=True, help="service root (queue + campaign dirs)"
    )
    status.add_argument(
        "--campaign",
        type=int,
        default=None,
        metavar="ID",
        help="one campaign's job state and live status (default: list all)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable snapshot instead of the panel",
    )
    status.set_defaults(func=_cmd_status)

    cancel = sub.add_parser("cancel", help="cancel a queued or running campaign")
    cancel.add_argument(
        "--root", required=True, help="service root (queue + campaign dirs)"
    )
    cancel.add_argument("--campaign", type=int, required=True, metavar="ID")
    cancel.set_defaults(func=_cmd_cancel)

    obs = sub.add_parser(
        "obs",
        help="inspect campaign telemetry: summary, live status, watch, export",
    )
    obs.add_argument(
        "mode",
        nargs="?",
        default="summary",
        choices=["summary", "status", "watch", "export"],
        help="summary: post-hoc report (default); status: one live "
        "progress/health snapshot; watch: re-render status until the "
        "campaign ends; export: Prometheus/JSON metrics",
    )
    obs.add_argument(
        "--events",
        action="append",
        default=None,
        metavar="PATH",
        help="JSONL event file; repeatable, glob patterns allowed "
        "(e.g. 'runs/*.jsonl') — multiple files are merged",
    )
    obs.add_argument(
        "--json",
        action="store_true",
        help="status/watch: print the machine-readable snapshot instead "
        "of the human panel",
    )
    obs.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="watch: poll interval (default: 2)",
    )
    obs.add_argument(
        "--once",
        action="store_true",
        help="watch: render a single frame and exit",
    )
    obs.add_argument(
        "--stall-after",
        type=float,
        default=DEFAULT_STALL_AFTER,
        metavar="SECONDS",
        help="seconds without a heartbeat before a worker (or the "
        f"campaign) is reported stalled (default: {DEFAULT_STALL_AFTER:g})",
    )
    obs.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="export: metrics snapshot file written by "
        "'repro campaign --metrics-snapshot'",
    )
    obs.add_argument(
        "--format",
        choices=["prometheus", "json"],
        default="prometheus",
        help="export: output format (default: prometheus text exposition)",
    )
    obs.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="export: write to this file instead of stdout",
    )
    obs.set_defaults(func=_cmd_obs)

    compare = sub.add_parser("compare", help="Algorithm I vs II (Table 4)")
    compare.add_argument("--faults", type=int, default=200)
    compare.add_argument("--seed", type=int, default=2001)
    compare.add_argument("--iterations", type=int, default=650)
    compare.set_defaults(func=_cmd_compare)

    figure = sub.add_parser("figure", help="render a fault-free figure")
    figure.add_argument("--name", required=True, choices=["fig03", "fig04", "fig05"])
    figure.set_defaults(func=_cmd_figure)

    listing = sub.add_parser("listing", help="disassemble a workload")
    listing.add_argument("--algorithm", default="I")
    listing.set_defaults(func=_cmd_listing)

    run = sub.add_parser(
        "run", help="compile a mini-language program and run it in the loop"
    )
    run.add_argument("--source", required=True)
    run.add_argument("--iterations", type=int, default=650)
    run.set_defaults(func=_cmd_run)

    propagate = sub.add_parser(
        "propagate", help="detail-mode propagation of one fault"
    )
    propagate.add_argument("--algorithm", default="I")
    propagate.add_argument("--element", required=True)
    propagate.add_argument("--bit", type=int, required=True)
    propagate.add_argument("--time", type=int, required=True)
    propagate.add_argument("--iterations", type=int, default=120)
    propagate.add_argument("--max-instructions", type=int, default=2000)
    propagate.set_defaults(func=_cmd_propagate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe early (`... | head`, `grep -q`):
        # the conventional silent exit, 128 + SIGPIPE.  stdout's fd is
        # pointed at devnull so interpreter shutdown does not raise
        # while flushing the broken stream.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
