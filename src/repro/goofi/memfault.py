"""Memory fault injection: bit-flips in stored RAM words.

The CPU campaigns flip *processor* state; this injector flips bits in
main-memory words mid-run without updating the stored parity — the
fault the DATA ERROR mechanism ("uncorrectable error in data read from
memory") exists for.  It completes the fault-model inventory: every
Table 1 mechanism now has a campaign-grade injection path.

Outcomes split three ways:

* the corrupted word is *read* before being overwritten → DATA ERROR
  (parity mismatch) terminates the run;
* the word is *overwritten* first (parity recomputed) → non-effective;
* the word is never touched again → latent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.classify import Outcome, classify_experiment
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import CampaignError
from repro.faults.models import FaultDescriptor, FaultTarget
from repro.goofi.target import ExperimentRun, TargetSystem
from repro.thor.cpu import StepResult
from repro.thor.memory import WORD

#: Partition label for RAM faults.
MEMORY_PARTITION = "memory"


@dataclass(frozen=True)
class MemoryFault:
    """One stored-RAM bit flipped at an iteration boundary.

    Attributes:
        address: word address in data or stack RAM.
        bit: bit position within the word.
        iteration: boundary before which the flip is applied.
    """

    address: int
    bit: int
    iteration: int

    def label(self) -> str:
        """Human-readable description."""
        return f"memory@{self.address:#x}[{self.bit}]@iter={self.iteration}"


def sample_memory_faults(
    target: TargetSystem,
    count: int,
    rng: np.random.Generator,
) -> List[MemoryFault]:
    """Uniformly sample RAM faults over data+stack words and iterations."""
    if count <= 0:
        raise CampaignError("count must be positive")
    layout = target.cpu.layout
    words: List[int] = []
    for base, size in (
        (layout.data_base, layout.data_size),
        (layout.stack_base, layout.stack_size),
    ):
        words.extend(range(base, base + size, WORD))
    return [
        MemoryFault(
            address=int(words[int(rng.integers(0, len(words)))]),
            bit=int(rng.integers(0, 32)),
            iteration=int(rng.integers(0, target.iterations)),
        )
        for _ in range(count)
    ]


def run_memory_experiment(
    target: TargetSystem, fault: MemoryFault
) -> ExperimentRun:
    """Inject one RAM fault at an iteration boundary and run to the end."""
    reference = target.reference
    if reference is None:
        raise CampaignError("run_reference() must come first")
    if not 0 <= fault.iteration < target.iterations:
        raise CampaignError("fault iteration outside the run")
    target.restore_boundary(fault.iteration)
    target.cpu.memory.corrupt_word_bit(fault.address, fault.bit)

    descriptor = FaultDescriptor(
        FaultTarget(MEMORY_PARTITION, f"{fault.address:#x}", fault.bit),
        reference.instructions_at[fault.iteration],
    )
    outputs: List[float] = list(reference.outputs[: fault.iteration])
    run = ExperimentRun(fault=descriptor, outputs=outputs)
    cpu = target.cpu
    env = target.environment
    watchdog = (
        int(reference.max_iteration_instructions * target.watchdog_factor) + 500
    )
    for k in range(fault.iteration, target.iterations):
        result = cpu.run(watchdog)
        run.instructions_executed = cpu.instruction_index
        if result is StepResult.DETECTED:
            run.detection = cpu.detection
            run.detected_iteration = k
            return run
        if result is not StepResult.YIELD:
            run.timed_out = True
            held = outputs[-1] if outputs else env.initial_throttle()
            while len(outputs) < target.iterations:
                outputs.append(held)
            run.final_state_differs = True
            return run
        outputs.append(env.exchange(cpu.memory.mmio))
        if target.boundary_hash() == reference.hashes[k + 1]:
            outputs.extend(reference.outputs[k + 1 :])
            run.early_exit_iteration = k + 1
            run.final_state_differs = False
            return run
    run.final_state_differs = target.boundary_hash() != reference.hashes[-1]
    return run


def run_memory_campaign(
    target: TargetSystem,
    faults: int,
    seed: int = 2001,
    name: str = "memory faults",
) -> "MemoryCampaignResult":
    """A complete RAM-fault campaign against a prepared target."""
    if target.reference is None:
        target.run_reference()
    rng = np.random.default_rng(seed)
    plan = sample_memory_faults(target, faults, rng)
    experiments: List[ExperimentRun] = []
    outcomes: List[Outcome] = []
    for fault in plan:
        run = run_memory_experiment(target, fault)
        outcomes.append(
            classify_experiment(
                observed=run.outputs,
                reference=target.reference.outputs,
                detected_by=(
                    run.detection.mechanism.value if run.detection else None
                ),
                final_state_differs=run.final_state_differs,
            )
        )
        experiments.append(run)
    return MemoryCampaignResult(
        name=name, experiments=experiments, outcomes=outcomes
    )


@dataclass
class MemoryCampaignResult:
    """All experiments of a RAM-fault campaign."""

    name: str
    experiments: List[ExperimentRun]
    outcomes: List[Outcome]

    def summary(self) -> CampaignSummary:
        """Aggregate into a table-ready summary."""
        records = [
            ClassifiedExperiment(partition=MEMORY_PARTITION, outcome=outcome)
            for outcome in self.outcomes
        ]
        return CampaignSummary(records, partition_sizes={}, name=self.name)
