"""The target system: CPU + workload + environment, with checkpointing.

:class:`TargetSystem` executes the closed loop the paper describes: the
workload runs on the simulated CPU, exchanging reference/speed/throttle
with the :class:`~repro.goofi.environment.EngineEnvironment` at every
yield.  It provides

* :meth:`run_reference` — the fault-free golden execution, recording the
  output sequence, a full restorable snapshot at every iteration
  boundary, a state hash per boundary and the dynamic instruction count
  (used to map sampled injection times to boundaries);
* :meth:`run_experiment` — one fault-injection experiment: restore the
  boundary checkpoint, replay to the injection instruction, flip the bit
  through the scan chain, then run to the termination condition.

Early exit: when the faulted run's full state hash equals the reference
hash at the same boundary, every subsequent instruction is determined to
be identical, so the reference output suffix is spliced in.  A test
verifies that disabling this optimisation yields identical outcomes.
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CampaignError
from repro.faults.liveness import AccessRecorder, LivenessMap
from repro.faults.models import FaultDescriptor
from repro.goofi.dataplane import (
    CheckpointStore,
    DeltaRecorder,
    MachineCursor,
    SplicedOutputs,
)
from repro.goofi.environment import EngineEnvironment
from repro.tcc.codegen import CompiledProgram
from repro.obs.metrics import DETECTION_LATENCY_BUCKETS, INSTRUCTIONS_BUCKETS
from repro.plant.engine import EngineModel
from repro.thor.cpu import CPU, BatchEngine, StepResult
from repro.thor.edm import DetectionEvent, add_detection_listener
from repro.thor.scanchain import ScanChain


def _hash_state(cpu: CPU, environment: EngineEnvironment) -> bytes:
    """Incremental full-state boundary digest.

    The code and rodata images almost never change between boundaries
    (code is write-protected; only fault injection or a restore touches
    them), so a blake2b hasher pre-fed with that prefix is cached on the
    memory map, keyed by the regions' mutation versions, and merely
    *copied* per boundary.  The volatile remainder — registers, cache,
    data/stack RAM, MMIO, environment — is always hashed live; the
    data/stack byte images themselves come from the regions'
    version-keyed packed caches, so an untouched region costs one dict
    probe instead of a repack.  Any version change (poke,
    ``corrupt_word_bit``, restore) invalidates the prefix and falls back
    to a full rebuild.  Digests are bit-identical to
    :func:`_hash_state_fresh` by construction (same byte order, same
    content) — an equivalence test enforces it.
    """
    memory = cpu.memory
    key = (memory.code.version, memory.rodata.version)
    cached = memory.hash_prefix_cache
    if cached is None or cached[0] != key:
        prefix = hashlib.blake2b(digest_size=16)
        prefix.update(memory.code.state_bytes())
        prefix.update(memory.rodata.state_bytes())
        cached = (key, prefix)
        memory.hash_prefix_cache = cached
    digest = cached[1].copy()
    digest.update(cpu.register_state_bytes())
    digest.update(cpu.cache.state_bytes())
    digest.update(memory.data.state_bytes())
    digest.update(memory.stack.state_bytes())
    digest.update(memory.mmio.state_bytes())
    digest.update(environment.state_bytes())
    return digest.digest()


def _hash_state_fresh(cpu: CPU, environment: EngineEnvironment) -> bytes:
    """:func:`_hash_state` rebuilt entirely from the live state, with no
    cached prefix or packed images — the honest baseline used by the
    ``incremental_hash=False`` flag and the digest-equivalence test."""
    memory = cpu.memory
    digest = hashlib.blake2b(digest_size=16)
    digest.update(memory.code.pack_fresh())
    digest.update(memory.rodata.pack_fresh())
    digest.update(cpu.register_state_bytes())
    digest.update(cpu.cache.state_bytes())
    digest.update(memory.data.pack_fresh())
    digest.update(memory.stack.pack_fresh())
    digest.update(memory.mmio.state_bytes())
    digest.update(environment.state_bytes())
    return digest.digest()


@dataclass
class ReferenceRun:
    """The golden execution of the workload.

    Attributes:
        outputs: delivered throttle per iteration.
        hashes: full-state hash at every iteration boundary
            (``hashes[k]`` is the state before iteration ``k`` executes;
            there are ``iterations + 1`` entries).
        snapshots: restorable state per boundary (same indexing).  With
            the delta data plane this is a
            :class:`~repro.goofi.dataplane.CheckpointStore` — one base
            snapshot plus per-boundary deltas — that still answers
            ``snapshots[k]``/``len(snapshots)`` with legacy full
            snapshot dicts; otherwise a plain list of them.
        instructions_at: dynamic instruction count at each boundary.
        total_instructions: instruction count of the whole run.
        max_iteration_instructions: the longest iteration, used to size
            the experiment watchdog.
    """

    outputs: List[float]
    hashes: List[bytes]
    snapshots: "List[Dict[str, object]] | CheckpointStore"
    instructions_at: List[int]
    total_instructions: int
    max_iteration_instructions: int

    def locate(self, instruction_time: int) -> int:
        """Boundary index whose iteration contains ``instruction_time``."""
        if not 0 <= instruction_time < self.total_instructions:
            raise CampaignError(
                f"injection time {instruction_time} outside the run "
                f"(0..{self.total_instructions - 1})"
            )
        # instructions_at is sorted ascending; the rightmost boundary at
        # or before instruction_time owns the iteration it falls in.
        return bisect_right(self.instructions_at, instruction_time) - 1


@dataclass
class ExperimentRun:
    """Raw observations of one fault-injection experiment.

    Attributes:
        fault: the injected fault.
        outputs: the delivered output sequence (spliced/held as needed so
            its length always equals the reference's, except for detected
            experiments, where delivery stopped at the detection).
        detection: the hardware detection that terminated the run, if any.
        detected_iteration: iteration during which the detection fired.
        final_state_differs: final state differs from the reference's.
        early_exit_iteration: boundary at which the state re-converged to
            the reference (None if it never did).
        timed_out: the workload stopped yielding and the watchdog expired.
        instructions_executed: dynamic instructions actually simulated.
        predicted: the run was synthesised from the reference by the
            def/use pruning (no simulation happened).
        quarantined: the experiment repeatedly crashed its worker and
            was recorded with a conservative stand-in result instead of
            a simulation (``provenance='quarantined'`` in the database).
        equivalent: the run was replayed from an outcome-equivalent
            representative fault (equivalence collapse) instead of
            being simulated (``provenance='equivalent'``).
        representative_index: plan index of the representative whose
            simulated outcome this run replays (``equivalent`` only).
    """

    fault: FaultDescriptor
    outputs: List[float]
    detection: Optional[DetectionEvent] = None
    detected_iteration: Optional[int] = None
    final_state_differs: bool = False
    early_exit_iteration: Optional[int] = None
    timed_out: bool = False
    instructions_executed: int = 0
    predicted: bool = False
    quarantined: bool = False
    equivalent: bool = False
    representative_index: Optional[int] = None


#: Workload variables primed when the run starts at an operating point
#: (Figure 3 begins already tracking 2000 rpm).  Actuator-valued state
#: (the integral part and its backups) is set to the steady throttle;
#: measurement-valued state (a PID's previous-measurement and backup) is
#: set to the initial reference speed.
WARM_STATE_NAMES = ("x", "x_old", "u_old")
WARM_MEASUREMENT_NAMES = ("y_prev", "yp_old")


@dataclass
class _Lane:
    """One batch lane: an independent machine + environment replica.

    The lanes of a batch differ only in mutable state (registers, PSW,
    cache line arrays, RAM images, engine state) — the program, decode
    tables and reference data are shared — so a :class:`TargetSystem`
    holding K lanes is the structure-of-arrays form of K faulty
    executions, all driven through one :class:`BatchEngine` loop.
    """

    cpu: CPU
    environment: EngineEnvironment
    scan_chain: ScanChain
    #: Delta-data-plane seat cursor; ``None`` when the lane's owner runs
    #: the full-copy path.
    cursor: Optional[MachineCursor] = None


class TargetSystem:
    """The complete fault-injection target."""

    def __init__(
        self,
        workload: CompiledProgram,
        environment: Optional[EngineEnvironment] = None,
        iterations: int = 650,
        watchdog_factor: float = 10.0,
        warm_start: bool = True,
        metrics=None,
        fast_dispatch: bool = True,
        incremental_hash: bool = True,
        batch_size: int = 1,
        environment_factory: Optional[Callable[[], EngineEnvironment]] = None,
        delta_dataplane: bool = True,
    ):
        if iterations <= 0:
            raise CampaignError("iterations must be positive")
        self.workload = workload
        self.environment = environment if environment is not None else EngineEnvironment()
        self.iterations = iterations
        self.watchdog_factor = watchdog_factor
        self.warm_start = warm_start
        #: Lanes per :meth:`run_experiment_batch` call; 1 disables
        #: batching (every experiment runs on the primary machine).
        self.batch_size = max(1, int(batch_size))
        #: Builds additional environment replicas for batch lanes.  When
        #: ``None``, plain :class:`EngineEnvironment` instances are
        #: cloned structurally; custom environment subclasses without a
        #: factory make :meth:`run_experiment_batch` fall back to
        #: serial per-fault execution.
        self.environment_factory = environment_factory
        self.batch_engine = BatchEngine()
        self._lane_pool: List[_Lane] = []
        self._lanes_unavailable = False
        self.cpu = CPU()
        #: ``False`` pins this target's CPU to the legacy decode/execute
        #: chain (the golden-equivalence baseline).
        self.cpu.fast_dispatch = fast_dispatch
        self.incremental_hash = incremental_hash
        self._hash: Callable[[CPU, EngineEnvironment], bytes] = (
            _hash_state if incremental_hash else _hash_state_fresh
        )
        self.scan_chain = ScanChain(self.cpu)
        #: ``False`` pins this target to the classic full-copy
        #: snapshot/restore data plane (the golden-equivalence
        #: baseline); ``True`` stores the reference as base + deltas and
        #: seats experiments through an undo-log cursor.  Outcome
        #: invariant by construction.
        self.delta_dataplane = bool(delta_dataplane)
        self._cursor: Optional[MachineCursor] = (
            MachineCursor(self.cpu, self.environment)
            if self.delta_dataplane
            else None
        )
        self.reference: Optional[ReferenceRun] = None
        #: Def/use liveness of the reference run, populated by
        #: :meth:`run_reference` with ``record_access=True`` (used by the
        #: campaign's fault pruning); ``None`` otherwise.
        self.liveness: Optional[LivenessMap] = None
        self._metrics = None
        self._remove_metrics_listener: Optional[Callable[[], None]] = None
        self.metrics = metrics

    @property
    def metrics(self):
        """Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        set, every experiment records its instruction count, detection
        latency and EDM firings (None: zero-overhead no-op)."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        # One EDM listener per campaign, registered here rather than per
        # experiment: the detection-listener list is global, so owners
        # must set ``metrics = None`` when the campaign finishes.
        if self._remove_metrics_listener is not None:
            self._remove_metrics_listener()
            self._remove_metrics_listener = None
        self._metrics = registry
        if registry is not None:
            def _count_detection(event: DetectionEvent) -> None:
                registry.counter(
                    "edm_firings", mechanism=event.mechanism.value
                ).inc()

            self._remove_metrics_listener = add_detection_listener(_count_detection)

    def boundary_hash(self) -> bytes:
        """The full-state digest at the current iteration boundary."""
        return self._hash(self.cpu, self.environment)

    def _warm_start_workload(self) -> None:
        """Prime the controller-state globals to the steady operating point."""
        addresses = self.workload.variable_addresses
        values = {name: self.environment.initial_throttle() for name in WARM_STATE_NAMES}
        initial_speed = self.environment.reference.value(0.0)
        values.update({name: initial_speed for name in WARM_MEASUREMENT_NAMES})
        for name, value in values.items():
            if name in addresses:
                bits = struct.unpack("<I", struct.pack("<f", value))[0]
                self.cpu.memory.poke(addresses[name], bits)

    # -- golden execution ------------------------------------------------------
    def run_reference(self, record_access: bool = False) -> ReferenceRun:
        """Execute the workload fault-free and record all checkpoints.

        With ``record_access=True`` the run additionally collects the
        def/use access trace of every injectable state element (plus the
        tracked data-space memory words) through the CPU/cache/memory
        recorder hooks, and freezes it into :attr:`liveness` for the
        campaign's fault pruning.  Recording changes nothing about the
        reference itself — the hooks only observe.
        """
        cpu = self.cpu
        env = self.environment
        cpu.load(self.workload.program)
        env.reset()
        if self.warm_start:
            self._warm_start_workload()
        env.write_inputs(cpu.memory.mmio)

        recorder: Optional[AccessRecorder] = None
        if record_access:
            # Attach after load(): the loader rebuilds memory/cache and
            # its pokes are initial state, not architectural accesses.
            recorder = AccessRecorder()
            layout = cpu.layout
            recorder.track_memory_range(layout.rodata_base, layout.rodata_size)
            recorder.track_memory_range(layout.data_base, layout.data_size)
            recorder.track_memory_range(layout.stack_base, layout.stack_size)
            cpu.recorder = recorder
            cpu.cache.recorder = recorder
            cpu.memory.recorder = recorder

        if self._cursor is not None:
            # load() replaced the memory map; any armed undo log died
            # with it, and the new reference invalidates the rest.
            self._cursor.invalidate()
        outputs: List[float] = []
        hashes: List[bytes] = [self.boundary_hash()]
        delta_recorder: Optional[DeltaRecorder] = (
            DeltaRecorder(cpu, env) if self.delta_dataplane else None
        )
        snapshots: List[Dict[str, object]] = (
            [] if delta_recorder is not None else [self._snapshot()]
        )
        instructions_at: List[int] = [0]
        max_iteration = 0
        # Generous budget for the golden run; it must always yield.
        budget = 1_000_000
        try:
            for k in range(self.iterations):
                before = cpu.instruction_index
                result = cpu.run(budget)
                if result is not StepResult.YIELD:
                    raise CampaignError(
                        f"reference run failed at iteration {k}: {result} "
                        f"{cpu.detection}"
                    )
                iteration_cost = cpu.instruction_index - before
                max_iteration = max(max_iteration, iteration_cost)
                outputs.append(env.exchange(cpu.memory.mmio))
                hashes.append(self.boundary_hash())
                if delta_recorder is not None:
                    delta_recorder.record()
                else:
                    snapshots.append(self._snapshot())
                instructions_at.append(cpu.instruction_index)
        finally:
            cpu.recorder = None
            cpu.cache.recorder = None
            cpu.memory.recorder = None
        if recorder is not None:
            self.liveness = LivenessMap.from_recorder(
                recorder, cpu.instruction_index
            )
        self.reference = ReferenceRun(
            outputs=outputs,
            hashes=hashes,
            snapshots=(
                delta_recorder.finish() if delta_recorder is not None else snapshots
            ),
            instructions_at=instructions_at,
            total_instructions=cpu.instruction_index,
            max_iteration_instructions=max_iteration,
        )
        return self.reference

    def _snapshot(self) -> Dict[str, object]:
        return {
            "cpu": self.cpu.snapshot(),
            "env": self.environment.snapshot(),
        }

    def _restore(self, snapshot: Dict[str, object]) -> None:
        self.cpu.restore(snapshot["cpu"])  # type: ignore[arg-type]
        self.environment.restore(snapshot["env"])  # type: ignore[arg-type]

    def restore_boundary(self, boundary: int) -> None:
        """Seat the primary machine at reference boundary ``boundary``.

        The supported entry point for snapshot consumers (detail replay,
        lockstep, memory-fault experiments): with the delta data plane
        it costs O(touched state) between consecutive calls, without it
        a legacy full restore.
        """
        reference = self.reference
        if reference is None:
            raise CampaignError("run_reference() must come first")
        self._seat(self._cursor, self.cpu, self.environment, reference, boundary)

    def _seat(
        self,
        cursor: Optional[MachineCursor],
        cpu: CPU,
        environment: EngineEnvironment,
        reference: ReferenceRun,
        boundary: int,
    ) -> None:
        """Put one machine at a reference boundary.

        Seat costs accumulate on the cursor (drained by
        :meth:`take_dataplane_stats`) rather than in the metrics
        registry: they depend on the visit schedule, and worker-merged
        registries must stay equal to a serial run's.
        """
        if cursor is None:
            snapshot = reference.snapshots[boundary]
            cpu.restore(snapshot["cpu"])  # type: ignore[arg-type]
            environment.restore(snapshot["env"])  # type: ignore[arg-type]
            return
        cursor.begin(reference, boundary)

    def take_dataplane_stats(self) -> Optional[Dict[str, int]]:
        """Drain the accumulated seat-cost counters of every cursor
        (primary machine + batch lanes); ``None`` when the delta data
        plane is off."""
        if not self.delta_dataplane:
            return None
        cursors = [self._cursor] + [
            lane.cursor for lane in self._lane_pool if lane.cursor is not None
        ]
        touched = replayed = full = 0
        for cursor in cursors:
            if cursor is None:
                continue
            t, r, f = cursor.take_stats()
            touched += t
            replayed += r
            full += f
        return {
            "restore_words_touched": touched,
            "delta_replay_iterations": replayed,
            "full_restores": full,
        }

    # -- one experiment -----------------------------------------------------------
    def run_experiment(
        self, fault: FaultDescriptor, early_exit: bool = True
    ) -> ExperimentRun:
        """Inject one fault and observe the run to its termination."""
        run = self._execute_experiment(fault, early_exit)
        self._record_metrics(run)
        return run

    def _record_metrics(self, run: ExperimentRun) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        metrics.histogram(
            "instructions_per_experiment", INSTRUCTIONS_BUCKETS
        ).observe(run.instructions_executed)
        if run.detection is not None:
            metrics.histogram(
                "detection_latency_instructions", DETECTION_LATENCY_BUCKETS
            ).observe(run.detection.instruction_index - run.fault.time)
        if run.early_exit_iteration is not None:
            metrics.counter("early_exits").inc()
        if run.timed_out:
            metrics.counter("timeouts").inc()

    def _execute_experiment(
        self, fault: FaultDescriptor, early_exit: bool = True
    ) -> ExperimentRun:
        reference = self.reference
        if reference is None:
            raise CampaignError("run_reference() must come first")
        start_iteration = reference.locate(fault.time)
        cpu = self.cpu
        env = self.environment
        self._seat(self._cursor, cpu, env, reference, start_iteration)

        # Replay the fault-free prefix of the injection iteration.
        replay = fault.time - reference.instructions_at[start_iteration]
        for _ in range(replay):
            result = cpu.step()
            if result is StepResult.DETECTED:
                raise CampaignError(
                    f"detection during fault-free replay: {cpu.detection}"
                )

        # Inject: read the chain, invert the bit(s), write it back.
        # Multi-bit fault models expose several targets at one instant.
        for target in fault.targets:
            self.scan_chain.flip(target)

        outputs: List[float] = (
            SplicedOutputs(reference.outputs, start_iteration)
            if self.delta_dataplane
            else list(reference.outputs[:start_iteration])
        )
        spliced = self.delta_dataplane
        watchdog = int(
            reference.max_iteration_instructions * self.watchdog_factor
        ) + 500
        run = ExperimentRun(fault=fault, outputs=outputs)

        for k in range(start_iteration, self.iterations):
            result = cpu.run(watchdog)
            run.instructions_executed = cpu.instruction_index
            if result is StepResult.DETECTED:
                run.detection = cpu.detection
                run.detected_iteration = k
                return run
            if result is not StepResult.YIELD:
                # HALTED, or OK with the watchdog budget exhausted: the
                # workload stopped delivering outputs.  The actuator
                # holds its last command for the rest of the window.
                run.timed_out = True
                held = outputs[-1] if outputs else env.initial_throttle()
                while len(outputs) < self.iterations:
                    outputs.append(held)
                run.final_state_differs = True
                return run
            outputs.append(env.exchange(cpu.memory.mmio))
            if early_exit and self.boundary_hash() == reference.hashes[k + 1]:
                if spliced:
                    outputs.splice_tail(k + 1)
                else:
                    outputs.extend(reference.outputs[k + 1 :])
                run.early_exit_iteration = k + 1
                run.final_state_differs = False
                return run
        run.final_state_differs = self.boundary_hash() != reference.hashes[-1]
        return run

    # -- batched experiments -------------------------------------------------------
    def _clone_environment(self) -> Optional[EngineEnvironment]:
        if self.environment_factory is not None:
            return self.environment_factory()
        env = self.environment
        if type(env) is EngineEnvironment:
            # The profiles are stateless lookup tables and the engine's
            # mutable state is overwritten by every snapshot restore, so
            # a structural clone behaves identically.
            return EngineEnvironment(
                engine=EngineModel(env.engine.params),
                reference=env.reference,
                load=env.load,
                warm_start=env.warm_start,
            )
        return None

    def _lanes(self, count: int) -> Optional[List[_Lane]]:
        """Up to ``count`` ready lanes, or None when the environment
        cannot be replicated (no factory, custom subclass)."""
        if self._lanes_unavailable:
            return None
        while len(self._lane_pool) < count:
            env = self._clone_environment()
            if env is None:
                self._lanes_unavailable = True
                return None
            cpu = CPU()
            cpu.fast_dispatch = self.cpu.fast_dispatch
            cpu.load(self.workload.program)
            self._lane_pool.append(
                _Lane(
                    cpu=cpu,
                    environment=env,
                    scan_chain=ScanChain(cpu),
                    cursor=(
                        MachineCursor(cpu, env) if self.delta_dataplane else None
                    ),
                )
            )
        return self._lane_pool[:count]

    def run_experiment_batch(
        self, faults: List[FaultDescriptor], early_exit: bool = True
    ) -> List[ExperimentRun]:
        """Run several experiments through one shared dispatch loop.

        Up to :attr:`batch_size` faults execute concurrently, each on
        its own lane (private registers/cache/RAM/engine state), with
        every lane's next control iteration dispatched through the same
        :class:`BatchEngine`.  Interleaving iterations of independent
        lanes changes nothing observable per experiment — results are
        identical, field for field, to :meth:`run_experiment` run
        serially; only the order of global detection-listener callbacks
        across *different* experiments changes (all consumers aggregate
        per experiment or order-insensitively).
        """
        reference = self.reference
        if reference is None:
            raise CampaignError("run_reference() must come first")
        faults = list(faults)
        lanes = (
            self._lanes(min(self.batch_size, len(faults)))
            if self.batch_size > 1 and len(faults) > 1
            else None
        )
        if not lanes:
            return [self.run_experiment(fault, early_exit) for fault in faults]

        engine = self.batch_engine
        hash_state = self._hash
        iterations = self.iterations
        watchdog = int(
            reference.max_iteration_instructions * self.watchdog_factor
        ) + 500
        results: List[Optional[ExperimentRun]] = [None] * len(faults)
        free = list(lanes)
        next_index = 0
        # Active slots: [lane, result_index, run, outputs, k] per
        # in-flight experiment, stepped round-robin one iteration at a
        # time so the lanes share the dispatch loop's warm state.
        active: List[List[object]] = []

        spliced = self.delta_dataplane

        def _start(lane: _Lane, index: int) -> List[object]:
            fault = faults[index]
            start_iteration = reference.locate(fault.time)
            self._seat(
                lane.cursor, lane.cpu, lane.environment, reference, start_iteration
            )
            replay = fault.time - reference.instructions_at[start_iteration]
            if replay:
                result = engine.run(lane.cpu, replay)
                if result is not StepResult.OK:
                    raise CampaignError(
                        f"detection during fault-free replay: {lane.cpu.detection}"
                    )
            for target in fault.targets:
                lane.scan_chain.flip(target)
            outputs: List[float] = (
                SplicedOutputs(reference.outputs, start_iteration)
                if spliced
                else list(reference.outputs[:start_iteration])
            )
            run = ExperimentRun(fault=fault, outputs=outputs)
            return [lane, index, run, outputs, start_iteration]

        while active or next_index < len(faults):
            while free and next_index < len(faults):
                active.append(_start(free.pop(), next_index))
                next_index += 1
            for slot in list(active):
                lane = slot[0]
                run = slot[2]
                outputs = slot[3]
                k = slot[4]
                cpu = lane.cpu
                env = lane.environment
                done = False
                result = engine.run(cpu, watchdog)
                run.instructions_executed = cpu.instruction_index
                if result is StepResult.DETECTED:
                    run.detection = cpu.detection
                    run.detected_iteration = k
                    done = True
                elif result is not StepResult.YIELD:
                    run.timed_out = True
                    held = outputs[-1] if outputs else env.initial_throttle()
                    while len(outputs) < iterations:
                        outputs.append(held)
                    run.final_state_differs = True
                    done = True
                else:
                    outputs.append(env.exchange(cpu.memory.mmio))
                    if (
                        early_exit
                        and hash_state(cpu, env) == reference.hashes[k + 1]
                    ):
                        if spliced:
                            outputs.splice_tail(k + 1)
                        else:
                            outputs.extend(reference.outputs[k + 1 :])
                        run.early_exit_iteration = k + 1
                        run.final_state_differs = False
                        done = True
                    elif k + 1 >= iterations:
                        run.final_state_differs = (
                            hash_state(cpu, env) != reference.hashes[-1]
                        )
                        done = True
                    else:
                        slot[4] = k + 1
                if done:
                    self._record_metrics(run)
                    results[slot[1]] = run  # type: ignore[index]
                    active.remove(slot)
                    free.append(lane)
        return results  # type: ignore[return-value]
