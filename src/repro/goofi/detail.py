"""Detail mode: instruction-level error-propagation analysis.

GOOFI's detail mode logs the system state "before the execution of each
machine instruction", letting the user analyse how an error propagates
(§3.3.3).  :func:`trace_propagation` implements that analysis for one
experiment: it replays the faulted run and the golden run in lockstep
from the injection point and records, per instruction, which parts of
the architectural state diverge — producing the propagation timeline
from the flipped bit to the first wrong output, detection or
re-convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import CampaignError
from repro.faults.models import FaultDescriptor
from repro.goofi.target import TargetSystem
from repro.thor.cpu import CPU, StepResult
from repro.thor.disassembler import disassemble_word
from repro.thor.isa import NUM_GPRS, SP_INDEX
from repro.thor.memory import MMIODevice


@dataclass(frozen=True)
class DivergencePoint:
    """State divergence observed before executing one instruction.

    Attributes:
        instruction_index: dynamic instruction count (golden timeline).
        pc: the golden run's program counter.
        mnemonic: disassembled golden instruction about to execute.
        diverged: names of architectural elements differing from golden
            (``r0..r7``, ``sp``, ``pc``, ``psw``, ``ir``, ``mar``,
            ``mdr``, ``cache``, ``memory``).
    """

    instruction_index: int
    pc: int
    mnemonic: str
    diverged: Tuple[str, ...]


@dataclass
class PropagationReport:
    """The outcome of one detail-mode propagation analysis.

    Attributes:
        fault: the injected fault.
        timeline: divergence per traced instruction (only instructions
            with a non-empty divergence set are recorded).
        instructions_traced: how many lockstep instructions were run.
        converged: the faulted state became identical to golden again.
        detected: mechanism name if a detection terminated the run.
        control_flow_diverged: the two runs stopped executing the same
            instruction stream (PC divergence) — tracing stops there.
    """

    fault: FaultDescriptor
    timeline: List[DivergencePoint] = field(default_factory=list)
    instructions_traced: int = 0
    converged: bool = False
    detected: Optional[str] = None
    control_flow_diverged: bool = False

    def summary_lines(self) -> List[str]:
        """A human-readable report."""
        lines = [f"propagation of {self.fault.label()}:"]
        for point in self.timeline[:40]:
            lines.append(
                f"  #{point.instruction_index:<7} {point.pc:#07x} "
                f"{point.mnemonic:<24} diverged: {', '.join(point.diverged)}"
            )
        if len(self.timeline) > 40:
            lines.append(f"  ... {len(self.timeline) - 40} more instructions")
        if self.detected:
            lines.append(f"  -> detected by {self.detected}")
        elif self.converged:
            lines.append("  -> state re-converged to the golden run (overwritten)")
        elif self.control_flow_diverged:
            lines.append("  -> control flow diverged from the golden run")
        else:
            lines.append("  -> still divergent when tracing stopped")
        return lines


def _compare_state(faulted: CPU, golden: CPU) -> Tuple[str, ...]:
    names: List[str] = []
    for index in range(NUM_GPRS):
        if faulted.regs[index] != golden.regs[index]:
            names.append(f"r{index}")
    if faulted.regs[SP_INDEX] != golden.regs[SP_INDEX]:
        names.append("sp")
    if faulted.pc != golden.pc:
        names.append("pc")
    if faulted.psw != golden.psw:
        names.append("psw")
    if faulted.ir != golden.ir:
        names.append("ir")
    if faulted.mar != golden.mar:
        names.append("mar")
    if faulted.mdr != golden.mdr:
        names.append("mdr")
    if faulted.cache.state_bytes() != golden.cache.state_bytes():
        names.append("cache")
    if faulted.memory.state_bytes() != golden.memory.state_bytes():
        names.append("memory")
    return tuple(names)


def trace_propagation(
    target: TargetSystem,
    fault: FaultDescriptor,
    max_instructions: int = 2000,
) -> PropagationReport:
    """Replay an experiment in lockstep with the golden run.

    Both runs are restored from the reference checkpoint before the
    injection iteration and replayed to the injection instruction; the
    fault is injected into the *faulted* CPU only, and both step
    together until the state re-converges, a detection fires, control
    flow diverges, or ``max_instructions`` lockstep steps elapse.

    Note: the faulted CPU is the target's own; the golden twin is a
    scratch CPU built from the same checkpoint, so the environment model
    (shared inputs) stays consistent while the runs agree on iteration
    boundaries.
    """
    reference = target.reference
    if reference is None:
        raise CampaignError("run_reference() must come first")
    start_iteration = reference.locate(fault.time)
    # The scratch golden twin needs a full checkpoint image; the primary
    # (faulted) machine seats through the target's data plane, which
    # costs O(touched state) between consecutive replays.
    snapshot = reference.snapshots[start_iteration]

    faulted = target.cpu
    golden = CPU(target.cpu.layout)
    golden.load(target.workload.program)
    target.restore_boundary(start_iteration)
    golden.restore(snapshot["cpu"])  # type: ignore[arg-type]

    replay = fault.time - reference.instructions_at[start_iteration]
    for _ in range(replay):
        faulted.step()
        golden.step()

    target.scan_chain.flip(fault.target)
    report = PropagationReport(fault=fault)

    for _ in range(max_instructions):
        diverged = _compare_state(faulted, golden)
        if not diverged:
            report.converged = True
            return report
        if "pc" in diverged:
            report.control_flow_diverged = True
            report.timeline.append(
                DivergencePoint(
                    instruction_index=golden.instruction_index,
                    pc=golden.pc,
                    mnemonic=disassemble_word(golden.ir),
                    diverged=diverged,
                )
            )
            return report
        report.timeline.append(
            DivergencePoint(
                instruction_index=golden.instruction_index,
                pc=golden.pc,
                mnemonic=disassemble_word(golden.ir),
                diverged=diverged,
            )
        )
        faulted_result = faulted.step()
        golden_result = golden.step()
        report.instructions_traced += 1
        if faulted_result is StepResult.DETECTED:
            report.detected = faulted.detection.mechanism.value
            return report
        if golden_result is StepResult.YIELD:
            # Iteration boundary (identical control flow, so both runs
            # yield together).  The environment steps once, driven by the
            # *faulted* output — the run under test — and both CPUs then
            # see the same inputs, so the comparison keeps isolating the
            # CPU-internal error.
            target.environment.exchange(faulted.memory.mmio)
            for offset in (MMIODevice.REFERENCE, MMIODevice.SPEED):
                golden.memory.mmio.write(offset, faulted.memory.mmio.read(offset))
    return report
