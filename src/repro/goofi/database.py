"""SQLite persistence for campaign results.

GOOFI stores all set-up and experiment data in a SQL database (§3.2);
here it is SQLite (standard library), with one row per campaign and one
per experiment.  The analysis phase can re-load stored campaigns into
:class:`~repro.analysis.report.CampaignSummary` objects without re-running
anything.

Since schema v4 the store is also the campaign's crash-safety substrate
(see ``docs/robustness.md``): campaigns carry a lifecycle ``status``
(``running`` / ``complete`` / ``aborted``) and a configuration
fingerprint, experiments carry their plan index, and results stream in
through batched transactions (:meth:`CampaignDatabase.store_experiment_batch`)
as chunks finish — so an interrupted campaign can be resumed from
exactly the experiments already on disk.  Connections run in WAL
journal mode with a busy timeout, making every commit durable against a
process kill and tolerant of a concurrent reader.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

from repro.analysis.classify import Outcome, OutcomeCategory
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import DatabaseError
from repro.goofi.workqueue import QUEUE_SCHEMA, WorkQueue

#: Version stamped into newly stored campaign rows.  Version 1 is the
#: original schema (no version/timestamp columns); version 2 added
#: ``schema_version`` and ``created_at`` — rows migrated from a v1
#: database keep ``schema_version = 1`` and a NULL ``created_at``;
#: version 3 added ``experiments.provenance`` (``'simulated'`` or
#: ``'predicted'`` — whether the outcome came from simulation or from
#: the def/use pruning's prediction), defaulting migrated rows to
#: ``'simulated'``, which is what every earlier version stored;
#: version 4 added crash-safe campaign lifecycle state:
#: ``campaigns.status`` (``'running'``/``'complete'``/``'aborted'`` —
#: migrated rows default to ``'complete'``, since pre-v4 rows were only
#: ever written after a finished campaign), ``campaigns.config_json``
#: (the resume fingerprint; NULL for migrated rows, which therefore
#: refuse to resume), ``experiments.plan_index`` (NULL for migrated
#: rows) plus a uniqueness index on ``(campaign_id, plan_index)``, and
#: the ``'quarantined'`` provenance value for experiments that
#: repeatedly crashed a worker;
#: version 5 added equivalence collapse: the ``'equivalent'``
#: provenance value for experiments replayed from an outcome-equivalent
#: class representative, and ``experiments.representative_index`` (the
#: representative's plan index; NULL for every other provenance and for
#: migrated rows);
#: version 6 made the database the campaign-service substrate: the
#: work-queue tables (``jobs``/``leases``/``job_acks``, see
#: :mod:`repro.goofi.workqueue`), ``experiments.detected_iteration`` and
#: ``experiments.detection_latency`` (NULL for migrated rows) so an
#: ``experiment_finished`` event can be rebuilt bit-for-bit from its row
#: after a worker SIGKILL tore the event log, and ``PRAGMA
#: user_version`` now tracks the schema version (0 in every earlier
#: database, since none of them set it).
DB_SCHEMA_VERSION = 6

#: Milliseconds a writer waits on a locked database before failing.
BUSY_TIMEOUT_MS = 5_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT NOT NULL,
    faults INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    iterations INTEGER NOT NULL,
    partition_sizes TEXT NOT NULL,
    wall_seconds REAL NOT NULL,
    schema_version INTEGER NOT NULL DEFAULT 1,
    created_at TEXT,
    status TEXT NOT NULL DEFAULT 'complete',
    config_json TEXT
);
CREATE TABLE IF NOT EXISTS experiments (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    partition TEXT NOT NULL,
    element TEXT NOT NULL,
    bit INTEGER NOT NULL,
    time INTEGER NOT NULL,
    category TEXT NOT NULL,
    mechanism TEXT,
    first_failure_iteration INTEGER,
    max_deviation REAL NOT NULL,
    early_exit_iteration INTEGER,
    timed_out INTEGER NOT NULL,
    instructions_executed INTEGER NOT NULL,
    provenance TEXT NOT NULL DEFAULT 'simulated',
    plan_index INTEGER,
    representative_index INTEGER,
    detected_iteration INTEGER,
    detection_latency INTEGER
);
"""

#: Guards streaming inserts against double-storing a plan index (NULLs —
#: legacy rows — stay exempt, as SQLite treats them as distinct).
_PLAN_INDEX_UNIQUE = (
    "CREATE UNIQUE INDEX IF NOT EXISTS idx_experiments_campaign_plan"
    " ON experiments(campaign_id, plan_index)"
)

_EXPERIMENT_INSERT = (
    "INSERT INTO experiments (campaign_id, partition, element, bit,"
    " time, category, mechanism, first_failure_iteration,"
    " max_deviation, early_exit_iteration, timed_out,"
    " instructions_executed, provenance, plan_index,"
    " representative_index, detected_iteration, detection_latency)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)


def _provenance(run) -> str:
    """How a stored experiment's outcome was obtained."""
    if getattr(run, "quarantined", False):
        return "quarantined"
    if getattr(run, "predicted", False):
        return "predicted"
    if getattr(run, "equivalent", False):
        return "equivalent"
    return "simulated"


def _experiment_row(campaign_id: int, plan_index: Optional[int], run, outcome) -> Tuple:
    detection = getattr(run, "detection", None)
    detection_latency = (
        detection.instruction_index - run.fault.time if detection is not None else None
    )
    return (
        campaign_id,
        run.fault.target.partition,
        run.fault.target.element,
        run.fault.target.bit,
        run.fault.time,
        outcome.category.value,
        outcome.mechanism,
        outcome.first_failure_iteration,
        outcome.max_deviation,
        run.early_exit_iteration,
        1 if run.timed_out else 0,
        run.instructions_executed,
        _provenance(run),
        plan_index,
        getattr(run, "representative_index", None),
        getattr(run, "detected_iteration", None),
        detection_latency,
    )


@dataclass(frozen=True)
class StoredExperiment:
    """One experiment row as needed to resume a campaign."""

    plan_index: int
    partition: str
    element: str
    bit: int
    time: int
    outcome: Outcome
    early_exit_iteration: Optional[int]
    timed_out: bool
    instructions_executed: int
    provenance: str
    representative_index: Optional[int] = None
    detected_iteration: Optional[int] = None
    detection_latency: Optional[int] = None


class CampaignDatabase:
    """A SQLite-backed store for campaign results."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path, timeout=BUSY_TIMEOUT_MS / 1000.0)
        # WAL keeps committed batches durable across a process kill and
        # lets a post-mortem reader open the file mid-campaign; both
        # pragmas are no-ops for in-memory databases.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.executescript(QUEUE_SCHEMA)
        self._migrate()
        self._conn.execute(_PLAN_INDEX_UNIQUE)
        self._conn.execute(f"PRAGMA user_version = {DB_SCHEMA_VERSION}")
        self._conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves older tables untouched, so
        databases written before :data:`DB_SCHEMA_VERSION` 2 lack the
        ``schema_version``/``created_at`` columns, ones written before
        version 3 lack ``experiments.provenance``, ones written before
        version 4 lack ``campaigns.status``/``config_json`` and
        ``experiments.plan_index``, ones written before version 5
        lack ``experiments.representative_index``, and ones written
        before version 6 lack ``experiments.detected_iteration`` /
        ``detection_latency`` (their queue tables were already created
        by the ``IF NOT EXISTS`` schema above); add them in place.
        Existing rows keep the defaults (version 1, NULL timestamp,
        ``'simulated'`` provenance, ``'complete'`` status, NULL
        fingerprint, plan index and representative index — correct,
        since pre-v4 rows were only written for finished campaigns and
        cannot be resumed, and no pre-v5 row was ever an equivalence
        replay).
        """
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(campaigns)").fetchall()
        }
        if "schema_version" not in columns:
            self._conn.execute(
                "ALTER TABLE campaigns"
                " ADD COLUMN schema_version INTEGER NOT NULL DEFAULT 1"
            )
        if "created_at" not in columns:
            self._conn.execute("ALTER TABLE campaigns ADD COLUMN created_at TEXT")
        if "status" not in columns:
            self._conn.execute(
                "ALTER TABLE campaigns"
                " ADD COLUMN status TEXT NOT NULL DEFAULT 'complete'"
            )
        if "config_json" not in columns:
            self._conn.execute("ALTER TABLE campaigns ADD COLUMN config_json TEXT")
        experiment_columns = {
            row[1]
            for row in self._conn.execute(
                "PRAGMA table_info(experiments)"
            ).fetchall()
        }
        if "provenance" not in experiment_columns:
            self._conn.execute(
                "ALTER TABLE experiments"
                " ADD COLUMN provenance TEXT NOT NULL DEFAULT 'simulated'"
            )
        if "plan_index" not in experiment_columns:
            self._conn.execute(
                "ALTER TABLE experiments ADD COLUMN plan_index INTEGER"
            )
        if "representative_index" not in experiment_columns:
            self._conn.execute(
                "ALTER TABLE experiments ADD COLUMN representative_index INTEGER"
            )
        if "detected_iteration" not in experiment_columns:
            self._conn.execute(
                "ALTER TABLE experiments ADD COLUMN detected_iteration INTEGER"
            )
        if "detection_latency" not in experiment_columns:
            self._conn.execute(
                "ALTER TABLE experiments ADD COLUMN detection_latency INTEGER"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def work_queue(self, policy=None) -> WorkQueue:
        """A :class:`~repro.goofi.workqueue.WorkQueue` over this database.

        The queue tables live in the campaign database since schema v6,
        so a file-backed campaign's chunk queue survives the process and
        is inspectable next to its results.  The queue shares this
        connection (a second connection to ``:memory:`` would see a
        different database), so closing the database closes the queue.
        """
        return WorkQueue(policy=policy, conn=self._conn)

    def __enter__(self) -> "CampaignDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writing ---------------------------------------------------------------
    def begin_campaign(
        self,
        config,
        partition_sizes: Dict[str, int],
        fingerprint: Optional[Dict[str, object]] = None,
    ) -> int:
        """Open a campaign row in ``'running'`` state; experiments then
        stream in through :meth:`store_experiment_batch` and the row is
        closed by :meth:`finish_campaign` (or :meth:`abort_campaign`).

        Returns the new campaign's database id.
        """
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO campaigns (name, faults, seed, iterations,"
                " partition_sizes, wall_seconds, schema_version, created_at,"
                " status, config_json)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'running', ?)",
                (
                    config.name,
                    config.faults,
                    config.seed,
                    config.iterations,
                    json.dumps(partition_sizes),
                    0.0,
                    DB_SCHEMA_VERSION,
                    datetime.now(timezone.utc).isoformat(),
                    json.dumps(fingerprint, sort_keys=True)
                    if fingerprint is not None
                    else None,
                ),
            )
        return int(cursor.lastrowid)

    def store_experiment_batch(
        self, campaign_id: int, batch: List[Tuple[int, object, object]]
    ) -> None:
        """Persist ``(plan_index, run, outcome)`` triples atomically.

        One explicit transaction per batch: a crash between batches
        loses nothing already committed, a crash mid-batch rolls the
        whole batch back — a campaign row can never reference half an
        insert.
        """
        if not batch:
            return
        rows = [
            _experiment_row(campaign_id, plan_index, run, outcome)
            for plan_index, run, outcome in batch
        ]
        with self._conn:
            self._conn.executemany(_EXPERIMENT_INSERT, rows)

    def finish_campaign(self, campaign_id: int, wall_seconds: float) -> None:
        """Mark a streamed campaign complete, accumulating wall time
        (a resumed campaign's total covers every partial run)."""
        with self._conn:
            self._conn.execute(
                "UPDATE campaigns SET status = 'complete',"
                " wall_seconds = wall_seconds + ? WHERE id = ?",
                (wall_seconds, campaign_id),
            )

    def abort_campaign(self, campaign_id: int) -> None:
        """Mark a campaign aborted (resumable); streamed rows remain."""
        with self._conn:
            self._conn.execute(
                "UPDATE campaigns SET status = 'aborted' WHERE id = ?",
                (campaign_id,),
            )

    def reopen_campaign(self, campaign_id: int) -> None:
        """Flip a campaign back to ``'running'`` at resume time."""
        with self._conn:
            self._conn.execute(
                "UPDATE campaigns SET status = 'running' WHERE id = ?",
                (campaign_id,),
            )

    def store_campaign(self, result) -> int:
        """Persist a whole :class:`~repro.goofi.campaign.CampaignResult`.

        Kept for API compatibility (campaign runs stream incrementally
        instead); the campaign row and every experiment commit in one
        explicit transaction, so a crash mid-store can never leave a
        campaign row with half its experiments.  Returns the campaign id.
        """
        config = result.config
        rows_iter = zip(result.experiments, result.outcomes)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO campaigns (name, faults, seed, iterations,"
                " partition_sizes, wall_seconds, schema_version, created_at,"
                " status)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'complete')",
                (
                    config.name,
                    config.faults,
                    config.seed,
                    config.iterations,
                    json.dumps(result.partition_sizes),
                    result.wall_seconds,
                    DB_SCHEMA_VERSION,
                    datetime.now(timezone.utc).isoformat(),
                ),
            )
            campaign_id = cursor.lastrowid
            self._conn.executemany(
                _EXPERIMENT_INSERT,
                [
                    _experiment_row(campaign_id, plan_index, run, outcome)
                    for plan_index, (run, outcome) in enumerate(rows_iter)
                ],
            )
        return int(campaign_id)

    # -- reading ------------------------------------------------------------------
    def list_campaigns(self) -> List[Tuple[int, str, int]]:
        """All stored campaigns as ``(id, name, faults)`` tuples."""
        cursor = self._conn.execute("SELECT id, name, faults FROM campaigns")
        return [(int(i), str(n), int(f)) for i, n, f in cursor.fetchall()]

    def campaign_status(self, campaign_id: int) -> str:
        """Lifecycle state: ``'running'``, ``'complete'`` or ``'aborted'``."""
        row = self._conn.execute(
            "SELECT status FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no campaign with id {campaign_id}")
        return str(row[0])

    def campaign_fingerprint(self, campaign_id: int) -> Optional[Dict[str, object]]:
        """The stored configuration fingerprint (None pre-v4)."""
        row = self._conn.execute(
            "SELECT config_json FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no campaign with id {campaign_id}")
        return json.loads(row[0]) if row[0] is not None else None

    def completed_experiments(self, campaign_id: int) -> Dict[int, StoredExperiment]:
        """Every streamed experiment of a campaign, keyed by plan index.

        The resume path re-derives the fault plan from the stored seed
        and simulates only the indices missing here.
        """
        cursor = self._conn.execute(
            "SELECT plan_index, partition, element, bit, time, category,"
            " mechanism, first_failure_iteration, max_deviation,"
            " early_exit_iteration, timed_out, instructions_executed,"
            " provenance, representative_index, detected_iteration,"
            " detection_latency FROM experiments"
            " WHERE campaign_id = ? AND plan_index IS NOT NULL"
            " ORDER BY plan_index",
            (campaign_id,),
        )
        completed: Dict[int, StoredExperiment] = {}
        for row in cursor.fetchall():
            (
                plan_index, partition, element, bit, time, category,
                mechanism, first_fail, max_dev, early_exit, timed_out,
                instructions, provenance, representative_index,
                detected_iteration, detection_latency,
            ) = row
            completed[int(plan_index)] = StoredExperiment(
                plan_index=int(plan_index),
                partition=str(partition),
                element=str(element),
                bit=int(bit),
                time=int(time),
                outcome=Outcome(
                    category=OutcomeCategory(category),
                    mechanism=mechanism,
                    first_failure_iteration=first_fail,
                    max_deviation=max_dev,
                ),
                early_exit_iteration=early_exit,
                timed_out=bool(timed_out),
                instructions_executed=int(instructions),
                provenance=str(provenance),
                representative_index=(
                    int(representative_index)
                    if representative_index is not None
                    else None
                ),
                detected_iteration=(
                    int(detected_iteration)
                    if detected_iteration is not None
                    else None
                ),
                detection_latency=(
                    int(detection_latency) if detection_latency is not None else None
                ),
            )
        return completed

    def finished_event_records(self, campaign_id: int) -> List[Dict[str, object]]:
        """Rebuild every ``experiment_finished`` payload from stored rows.

        Since schema v6 a row carries every field of
        :func:`repro.obs.telemetry.experiment_event`, so the service's
        event-log repair can reconstruct records a SIGKILL tore out of
        the log — bit-identical to the originals, because the payload is
        a pure function of the experiment.  Rows are returned in plan
        order; legacy rows without a plan index are skipped.
        """
        cursor = self._conn.execute(
            "SELECT plan_index, partition, element, bit, time, category,"
            " mechanism, early_exit_iteration, timed_out,"
            " instructions_executed, provenance, detected_iteration,"
            " detection_latency FROM experiments"
            " WHERE campaign_id = ? AND plan_index IS NOT NULL"
            " ORDER BY plan_index",
            (campaign_id,),
        )
        records: List[Dict[str, object]] = []
        for row in cursor.fetchall():
            (
                plan_index, partition, element, bit, time, category,
                mechanism, early_exit, timed_out, instructions,
                provenance, detected_iteration, detection_latency,
            ) = row
            records.append(
                {
                    "index": int(plan_index),
                    "partition": str(partition),
                    "element": str(element),
                    "bit": int(bit),
                    "injection_time": int(time),
                    "category": str(category),
                    "mechanism": mechanism,
                    "detected_iteration": detected_iteration,
                    "detection_latency": detection_latency,
                    "early_exit_iteration": early_exit,
                    "timed_out": bool(timed_out),
                    "instructions": int(instructions),
                    "pruned": provenance == "predicted",
                    "equivalent": provenance == "equivalent",
                }
            )
        return records

    def load_summary(self, campaign_id: int) -> CampaignSummary:
        """Rebuild a :class:`CampaignSummary` from stored rows.

        Records come back in plan order for streamed (v4) campaigns —
        parallel chunks commit in completion order, so insertion order
        alone would vary run to run — and in insertion order for legacy
        rows without a plan index.
        """
        row = self._conn.execute(
            "SELECT name, partition_sizes FROM campaigns WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no campaign with id {campaign_id}")
        name, partition_sizes_json = row
        cursor = self._conn.execute(
            "SELECT partition, category, mechanism, first_failure_iteration,"
            " max_deviation FROM experiments WHERE campaign_id = ?"
            " ORDER BY (plan_index IS NULL), plan_index, id",
            (campaign_id,),
        )
        records = []
        for partition, category, mechanism, first_fail, max_dev in cursor.fetchall():
            outcome = Outcome(
                category=OutcomeCategory(category),
                mechanism=mechanism,
                first_failure_iteration=first_fail,
                max_deviation=max_dev,
            )
            records.append(ClassifiedExperiment(partition=partition, outcome=outcome))
        if not records:
            raise DatabaseError(f"campaign {campaign_id} has no experiments")
        return CampaignSummary(
            records=records,
            partition_sizes=json.loads(partition_sizes_json),
            name=name,
        )

    def mechanism_counts(self, campaign_id: int) -> List[Tuple[str, int]]:
        """Detected-error counts per mechanism (analysis-phase query)."""
        cursor = self._conn.execute(
            "SELECT mechanism, COUNT(*) FROM experiments"
            " WHERE campaign_id = ? AND mechanism IS NOT NULL"
            " GROUP BY mechanism ORDER BY COUNT(*) DESC",
            (campaign_id,),
        )
        return [(str(m), int(c)) for m, c in cursor.fetchall()]

    def provenance_counts(self, campaign_id: int) -> List[Tuple[str, int]]:
        """Experiment counts per provenance
        (``simulated``/``predicted``/``equivalent``/``quarantined``)."""
        cursor = self._conn.execute(
            "SELECT provenance, COUNT(*) FROM experiments"
            " WHERE campaign_id = ? GROUP BY provenance ORDER BY provenance",
            (campaign_id,),
        )
        return [(str(p), int(c)) for p, c in cursor.fetchall()]
