"""SQLite persistence for campaign results.

GOOFI stores all set-up and experiment data in a SQL database (§3.2);
here it is SQLite (standard library), with one row per campaign and one
per experiment.  The analysis phase can re-load stored campaigns into
:class:`~repro.analysis.report.CampaignSummary` objects without re-running
anything.
"""

from __future__ import annotations

import json
import sqlite3
from datetime import datetime, timezone
from typing import List, Optional, Tuple

from repro.analysis.classify import Outcome, OutcomeCategory
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import DatabaseError

#: Version stamped into newly stored campaign rows.  Version 1 is the
#: original schema (no version/timestamp columns); version 2 added
#: ``schema_version`` and ``created_at`` — rows migrated from a v1
#: database keep ``schema_version = 1`` and a NULL ``created_at``;
#: version 3 added ``experiments.provenance`` (``'simulated'`` or
#: ``'predicted'`` — whether the outcome came from simulation or from
#: the def/use pruning's prediction), defaulting migrated rows to
#: ``'simulated'``, which is what every earlier version stored.
DB_SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT NOT NULL,
    faults INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    iterations INTEGER NOT NULL,
    partition_sizes TEXT NOT NULL,
    wall_seconds REAL NOT NULL,
    schema_version INTEGER NOT NULL DEFAULT 1,
    created_at TEXT
);
CREATE TABLE IF NOT EXISTS experiments (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    partition TEXT NOT NULL,
    element TEXT NOT NULL,
    bit INTEGER NOT NULL,
    time INTEGER NOT NULL,
    category TEXT NOT NULL,
    mechanism TEXT,
    first_failure_iteration INTEGER,
    max_deviation REAL NOT NULL,
    early_exit_iteration INTEGER,
    timed_out INTEGER NOT NULL,
    instructions_executed INTEGER NOT NULL,
    provenance TEXT NOT NULL DEFAULT 'simulated'
);
"""


class CampaignDatabase:
    """A SQLite-backed store for campaign results."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves older tables untouched, so
        databases written before :data:`DB_SCHEMA_VERSION` 2 lack the
        ``schema_version``/``created_at`` columns and ones written
        before version 3 lack ``experiments.provenance``; add them in
        place.  Existing rows keep the defaults (version 1, NULL
        timestamp, ``'simulated'`` provenance — correct, since pruning
        did not exist when they were written).
        """
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(campaigns)").fetchall()
        }
        if "schema_version" not in columns:
            self._conn.execute(
                "ALTER TABLE campaigns"
                " ADD COLUMN schema_version INTEGER NOT NULL DEFAULT 1"
            )
        if "created_at" not in columns:
            self._conn.execute("ALTER TABLE campaigns ADD COLUMN created_at TEXT")
        experiment_columns = {
            row[1]
            for row in self._conn.execute(
                "PRAGMA table_info(experiments)"
            ).fetchall()
        }
        if "provenance" not in experiment_columns:
            self._conn.execute(
                "ALTER TABLE experiments"
                " ADD COLUMN provenance TEXT NOT NULL DEFAULT 'simulated'"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "CampaignDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writing ---------------------------------------------------------------
    def store_campaign(self, result) -> int:
        """Persist a :class:`~repro.goofi.campaign.CampaignResult`.

        Returns the new campaign's database id.
        """
        config = result.config
        cursor = self._conn.execute(
            "INSERT INTO campaigns (name, faults, seed, iterations,"
            " partition_sizes, wall_seconds, schema_version, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                config.name,
                config.faults,
                config.seed,
                config.iterations,
                json.dumps(result.partition_sizes),
                result.wall_seconds,
                DB_SCHEMA_VERSION,
                datetime.now(timezone.utc).isoformat(),
            ),
        )
        campaign_id = cursor.lastrowid
        rows = []
        for run, outcome in zip(result.experiments, result.outcomes):
            rows.append(
                (
                    campaign_id,
                    run.fault.target.partition,
                    run.fault.target.element,
                    run.fault.target.bit,
                    run.fault.time,
                    outcome.category.value,
                    outcome.mechanism,
                    outcome.first_failure_iteration,
                    outcome.max_deviation,
                    run.early_exit_iteration,
                    1 if run.timed_out else 0,
                    run.instructions_executed,
                    "predicted" if getattr(run, "predicted", False) else "simulated",
                )
            )
        self._conn.executemany(
            "INSERT INTO experiments (campaign_id, partition, element, bit,"
            " time, category, mechanism, first_failure_iteration,"
            " max_deviation, early_exit_iteration, timed_out,"
            " instructions_executed, provenance)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()
        return int(campaign_id)

    # -- reading ------------------------------------------------------------------
    def list_campaigns(self) -> List[Tuple[int, str, int]]:
        """All stored campaigns as ``(id, name, faults)`` tuples."""
        cursor = self._conn.execute("SELECT id, name, faults FROM campaigns")
        return [(int(i), str(n), int(f)) for i, n, f in cursor.fetchall()]

    def load_summary(self, campaign_id: int) -> CampaignSummary:
        """Rebuild a :class:`CampaignSummary` from stored rows."""
        row = self._conn.execute(
            "SELECT name, partition_sizes FROM campaigns WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no campaign with id {campaign_id}")
        name, partition_sizes_json = row
        cursor = self._conn.execute(
            "SELECT partition, category, mechanism, first_failure_iteration,"
            " max_deviation FROM experiments WHERE campaign_id = ?",
            (campaign_id,),
        )
        records = []
        for partition, category, mechanism, first_fail, max_dev in cursor.fetchall():
            outcome = Outcome(
                category=OutcomeCategory(category),
                mechanism=mechanism,
                first_failure_iteration=first_fail,
                max_deviation=max_dev,
            )
            records.append(ClassifiedExperiment(partition=partition, outcome=outcome))
        if not records:
            raise DatabaseError(f"campaign {campaign_id} has no experiments")
        return CampaignSummary(
            records=records,
            partition_sizes=json.loads(partition_sizes_json),
            name=name,
        )

    def mechanism_counts(self, campaign_id: int) -> List[Tuple[str, int]]:
        """Detected-error counts per mechanism (analysis-phase query)."""
        cursor = self._conn.execute(
            "SELECT mechanism, COUNT(*) FROM experiments"
            " WHERE campaign_id = ? AND mechanism IS NOT NULL"
            " GROUP BY mechanism ORDER BY COUNT(*) DESC",
            (campaign_id,),
        )
        return [(str(m), int(c)) for m, c in cursor.fetchall()]

    def provenance_counts(self, campaign_id: int) -> List[Tuple[str, int]]:
        """Experiment counts per provenance (``simulated``/``predicted``)."""
        cursor = self._conn.execute(
            "SELECT provenance, COUNT(*) FROM experiments"
            " WHERE campaign_id = ? GROUP BY provenance ORDER BY provenance",
            (campaign_id,),
        )
        return [(str(p), int(c)) for p, c in cursor.fetchall()]
