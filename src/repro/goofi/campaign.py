"""Campaign orchestration: configuration, set-up, injection, analysis.

:class:`ScifiCampaign` drives a full scan-chain fault-injection campaign
against the simulated CPU, following the paper's §3.3 flow and producing
a Tables 2/3-ready :class:`~repro.analysis.report.CampaignSummary`.

Campaign execution is crash-safe end to end (``docs/robustness.md``):
classified outcomes stream into the database as chunks finish, failed
worker chunks are requeued with capped exponential backoff and bisected
to isolate poison experiments, a broken process pool is rebuilt (and
ultimately degraded to serial execution), repeat offenders are recorded
with ``provenance='quarantined'`` instead of aborting the run, SIGINT
and SIGTERM flush in-flight results and mark the campaign ``aborted``,
and ``run(resume_from=...)`` continues an interrupted campaign to a
summary bit-identical to an uninterrupted one.

Chunk dispatch runs through the lease-based
:class:`~repro.goofi.workqueue.WorkQueue` (the retry/split/quarantine
bookkeeping above lives in its ``nack``), so the same queue semantics
serve this one-box ``ProcessPoolExecutor`` and the multi-process
campaign service (:mod:`repro.service`).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.classify import Outcome, classify_experiment
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import AbortRequested, CampaignAborted, CampaignError
from repro.faults.models import FaultDescriptor, LocationSpace, sample_fault_plan
from repro.goofi.database import CampaignDatabase
from repro.goofi.environment import EngineEnvironment
from repro.goofi.pool import ReferencePool, WorkerPayload, worker_target
from repro.goofi.pruning import (
    collapse_live_plan,
    preclassify_pairs,
    replay_equivalent,
    synthesize_run,
)
from repro.goofi.recovery import (
    ChaosSpec,
    RecoveryPolicy,
    ResultSink,
    backoff_seconds,
    chaos_maybe_crash,
    check_fingerprint,
    config_fingerprint,
    quarantined_run,
)
from repro.goofi.target import ExperimentRun, TargetSystem
from repro.goofi.workqueue import LeasedJob, WorkQueue
from repro.obs.events import EventLog, merge_event_shards, now
from repro.obs.metrics import MetricsRegistry
from repro.obs.status import write_manifest
from repro.obs.telemetry import (
    Telemetry,
    campaign_finished_event,
    campaign_started_event,
    experiment_event,
    heartbeat_event,
    record_outcome,
)
from repro.plant.profiles import ITERATIONS
from repro.tcc.codegen import CompiledProgram


@dataclass
class CampaignConfig:
    """Set-up phase parameters (§3.3.2).

    Attributes:
        workload: the compiled workload to inject into.
        name: campaign label used in summaries and the database.
        faults: number of fault-injection experiments.
        seed: RNG seed for the uniform location/time sampling.
        iterations: loop iterations per experiment (paper: 650).
        partitions: restrict injection to these scan-chain partitions
            (default: all — ``cache`` and ``registers``).
        watchdog_factor: experiment watchdog as a multiple of the longest
            fault-free iteration.
        early_exit: enable the provably-safe early termination when the
            faulted state re-converges to the reference.
        prune: record the reference run's def/use access trace and skip
            simulating faults whose outcome it proves (overwritten before
            the next read, or never touched again) — the predicted
            experiments classify identically to simulated ones, see
            ``docs/performance.md``.  Off by default.
        collapse: group live faults into outcome-equivalence classes
            (same first live read consuming the same delivered value),
            simulate one representative per class and replay its result
            for the rest (``provenance='equivalent'``).  Also records
            the access trace.  Off by default.
        batch_size: live faults simulated concurrently through one
            shared dispatch loop (each on its own lane of CPU/cache/
            environment state); ``1`` (default) pins the classic one-
            at-a-time execution.  Like ``collapse``, proven outcome-
            invariant by the golden-equivalence gate.
        share_reference: ship the parent's golden run to the workers
            instead of having every worker recompute it (parallel runs
            only; outcomes are identical either way).
        fast_dispatch: use the predecoded dispatch-table interpreter;
            ``False`` pins the legacy decode/execute chain.
        incremental_hash: compute boundary digests incrementally from
            cached clean-image prefixes; ``False`` rebuilds every digest
            from scratch.  All three flags exist for the
            golden-equivalence test and benchmark baselines.
        delta_dataplane: store the reference as a base snapshot plus
            per-iteration deltas and restore experiment state by
            unwinding an undo log of the touched words (see
            ``docs/performance.md``); ``False`` pins the legacy
            full-copy snapshot/restore plane.  Outcome-invariant, gated
            by the golden-equivalence suite.
        locality_sort: execute live faults in injection-time order so
            consecutive experiments restore to nearby boundaries (the
            delta cursor's cheap path), and size parallel chunks
            adaptively from measured worker throughput.  Results are
            still streamed, stored and reported in plan order;
            outcome-invariant like the other scheduling flags.
        environment_factory: builds the environment simulator.
        recovery: retry/backoff/quarantine policy of the crash-safety
            machinery (``docs/robustness.md``); never affects outcomes,
            only how failures are survived.
        chaos: optional deterministic worker-crash injection used by the
            chaos tests and the CI smoke; ``None`` in production.
    """

    workload: CompiledProgram
    name: str = "campaign"
    faults: int = 500
    seed: int = 2001
    iterations: int = ITERATIONS
    partitions: Optional[List[str]] = None
    watchdog_factor: float = 10.0
    early_exit: bool = True
    prune: bool = False
    collapse: bool = False
    batch_size: int = 1
    share_reference: bool = True
    fast_dispatch: bool = True
    incremental_hash: bool = True
    delta_dataplane: bool = True
    locality_sort: bool = True
    environment_factory: Callable[[], EngineEnvironment] = EngineEnvironment
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    chaos: Optional[ChaosSpec] = None

    def __post_init__(self) -> None:
        if self.faults <= 0:
            raise CampaignError("faults must be positive")
        if self.iterations <= 0:
            raise CampaignError("iterations must be positive")
        if self.batch_size <= 0:
            raise CampaignError("batch_size must be positive")


@dataclass
class CampaignResult:
    """All experiments of one campaign, classified.

    Attributes:
        config: the campaign configuration.
        experiments: raw per-experiment observations.  For a resumed
            campaign, experiments completed before the interruption are
            reconstructed from the database (fault, termination fields
            and outcome, but no output trace).
        outcomes: §4.1 classification per experiment (same order).
        reference_outputs: the golden output sequence.
        partition_sizes: injectable bits per partition.
        wall_seconds: total injection-phase wall time (this run only).
    """

    config: CampaignConfig
    experiments: List[ExperimentRun]
    outcomes: List[Outcome]
    reference_outputs: List[float]
    partition_sizes: dict
    wall_seconds: float = 0.0

    def summary(self) -> CampaignSummary:
        """Aggregate into a Tables 2/3-ready summary."""
        records = [
            ClassifiedExperiment(partition=run.fault.target.partition, outcome=outcome)
            for run, outcome in zip(self.experiments, self.outcomes)
        ]
        return CampaignSummary(
            records=records,
            partition_sizes=self.partition_sizes,
            name=self.config.name,
        )


def _null_span(_name: str):
    """The zero-overhead stand-in for a tracer span."""
    return nullcontext()


def _run_chunk(args):
    """Worker entry point: run one slice of a fault plan.

    Top-level (picklable) by necessity; runs against the process-wide
    target system built by the pool initializer — with a shared
    reference the golden run was computed once in the parent and
    shipped, otherwise the initializer recomputed it, but either way no
    per-chunk reference run happens here.  ``chunk`` carries
    ``(plan index, fault)`` pairs so telemetry can be re-ordered into
    plan order afterwards.  With ``batch_size > 1`` the chunk is cut
    into groups of that size and each group runs through the target's
    shared-dispatch batch engine — outcome-identical to one-at-a-time
    execution, just cheaper per instruction.

    When telemetry is enabled the worker records into its own
    :class:`~repro.obs.MetricsRegistry` (returned as a dict for the
    parent to merge) and writes ``experiment_finished`` events to its
    own shard file — worker processes never share a file descriptor.
    Every ``heartbeat_every`` experiments (and once at chunk end) the
    worker also appends a ``worker_heartbeat`` record and flushes the
    shard, so a live ``repro obs status`` poll of the shard files sees
    per-worker progress and throughput while the chunk is still running.

    Returns ``(submission_id, results, registry_dict, seconds)`` where
    ``results`` holds ``(plan index, run, outcome)`` triples.
    """
    (
        chunk,
        submission_id,
        shard_path,
        metrics_enabled,
        early_exit,
        chaos,
        heartbeat_every,
        batch_size,
    ) = args
    registry = MetricsRegistry() if metrics_enabled else None
    events = EventLog(shard_path) if shard_path else None
    target = worker_target()
    started = time.perf_counter()
    results = []
    # The worker process outlives this chunk; reset the metrics binding
    # (and the per-chunk batch size) afterwards so neither leaks into
    # the next phase.
    target.metrics = registry
    previous_batch = target.batch_size
    target.batch_size = max(1, int(batch_size))
    try:
        reference_outputs = target.reference.outputs
        group_size = target.batch_size
        for start in range(0, len(chunk), group_size):
            group = chunk[start : start + group_size]
            for index, _fault in group:
                chaos_maybe_crash(chaos, index)
            runs = target.run_experiment_batch(
                [fault for _index, fault in group], early_exit
            )
            for (index, fault), run in zip(group, runs):
                outcome = ScifiCampaign._classify(run, reference_outputs)
                if registry is not None:
                    record_outcome(registry, run, outcome)
                if events is not None:
                    events.emit(
                        "experiment_finished",
                        **experiment_event(index, run, outcome),
                    )
                    done = len(results) + 1
                    if done == len(chunk) or (
                        heartbeat_every and done % heartbeat_every == 0
                    ):
                        events.emit(
                            "worker_heartbeat",
                            **heartbeat_event(
                                worker=submission_id,
                                done=done,
                                total=len(chunk),
                                seconds=time.perf_counter() - started,
                            ),
                        )
                        events.flush()
                results.append((index, run, outcome))
        if events is not None:
            # Delta-restore counters accumulated over this chunk.  These
            # are schedule-dependent (they vary with chunk composition),
            # so they travel as shard events, never through the metrics
            # registry whose serial/parallel equality is a tested
            # invariant.
            stats = target.take_dataplane_stats()
            if stats is not None:
                events.emit(
                    "dataplane_stats", ts=now(), worker=submission_id, **stats
                )
    finally:
        target.metrics = None
        target.batch_size = previous_batch
    if events is not None:
        events.close()
    seconds = time.perf_counter() - started
    return (
        submission_id,
        results,
        registry.to_dict() if registry is not None else None,
        seconds,
    )


class ScifiCampaign:
    """A scan-chain implemented fault-injection campaign (§3.3.1 SCIFI)."""

    def __init__(
        self,
        config: CampaignConfig,
        database: Optional[CampaignDatabase] = None,
    ):
        self.config = config
        self.database = database
        self.target = TargetSystem(
            workload=config.workload,
            environment=config.environment_factory(),
            iterations=config.iterations,
            watchdog_factor=config.watchdog_factor,
            fast_dispatch=config.fast_dispatch,
            incremental_hash=config.incremental_hash,
            batch_size=config.batch_size,
            environment_factory=config.environment_factory,
            delta_dataplane=config.delta_dataplane,
        )
        # Streaming-persistence state of the in-flight run, used by the
        # abort path to flush and mark the campaign resumable.
        self._sink: Optional[ResultSink] = None
        self._campaign_id: Optional[int] = None
        self._workers: int = 1

    def location_space(self) -> LocationSpace:
        """The injectable locations after partition restriction."""
        space = self.target.scan_chain.location_space()
        if self.config.partitions:
            targets = [t for t in space if t.partition in self.config.partitions]
            if not targets:
                raise CampaignError(
                    f"no targets in partitions {self.config.partitions!r}"
                )
            space = LocationSpace(targets)
        return space

    def run(
        self,
        progress: Optional[Callable[[int, int, Outcome], None]] = None,
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        pool: Optional[ReferencePool] = None,
        resume_from: Optional[int] = None,
    ) -> CampaignResult:
        """Execute the campaign: reference run, sampling, injection, analysis.

        Args:
            progress: optional callback ``(done, total, outcome)`` invoked
                after each experiment.  With ``workers > 1`` it fires as
                chunk results arrive, so ``done`` still counts every
                experiment but outcomes report in completion order.
            workers: number of worker processes.  ``1`` (default) runs
                serially in this process; ``N > 1`` fans the live plan
                out over N processes.  With ``locality_sort`` (default)
                the plan is executed in injection-time order through
                adaptively sized chunks drawn on demand (see
                ``docs/performance.md``); with it off the plan is dealt
                into N *strided* slices (``plan[i::N]``), which balances
                load even when plan order correlates with experiment
                cost.  Results are bit-identical to the serial run
                either way (every experiment is independent and fully
                determined by its fault), just reordered back into plan
                order.
            telemetry: optional :class:`~repro.obs.Telemetry` bundle.
                When given, the run records phase spans, per-experiment
                metrics and JSONL events; per-worker registries/shards
                are merged so serial and parallel runs report identical
                aggregate telemetry.  ``None`` (default) is a no-op.
            pool: optional :class:`~repro.goofi.pool.ReferencePool` to
                run the parallel phase on.  The pool's warm workers are
                reused (and left running for the caller's next phase);
                without one the parallel path spins up and tears down
                its own.  Implies the pool's worker count.
            resume_from: continue the stored campaign with this database
                id: its completed experiments are reloaded, the fault
                plan is re-derived from the stored seed/config (refusing
                on any outcome-relevant mismatch) and only the remainder
                is simulated.  The resumed summary is bit-identical to
                an uninterrupted run's.  Requires a database.

        Raises:
            CampaignAborted: the run was interrupted (SIGINT, SIGTERM or
                an :class:`~repro.errors.AbortRequested` raised from the
                progress callback); in-flight results were flushed and
                the campaign row (if any) is marked ``aborted`` — pass
                its id back as ``resume_from`` to continue.  The
                exception's ``reason`` says which (``"sigint"``,
                ``"sigterm"``, or the requested reason such as
                ``"cancel"``), which the CLI maps to distinct exit
                codes.
        """
        config = self.config
        if pool is not None:
            workers = pool.workers
        if resume_from is not None and self.database is None:
            raise CampaignError("resume_from requires a campaign database")
        span = telemetry.span if telemetry is not None else _null_span
        if telemetry is not None:
            telemetry.emit(
                "campaign_started", **campaign_started_event(config, workers)
            )
            if telemetry.metrics is not None and workers <= 1:
                self.target.metrics = telemetry.metrics

        self._sink = None
        self._campaign_id = None
        # A SIGINT (operator Ctrl-C) or SIGTERM (service supervisor
        # stopping a worker) must stop the campaign *between* database
        # commits: the handlers raise KeyboardInterrupt (SIGTERM through
        # the AbortRequested subclass, so the reason survives), and the
        # abort path below flushes in-flight results and marks the
        # campaign resumable.
        previous_handlers: List[Tuple[int, object]] = []
        for signum, handler in (
            (signal.SIGINT, self._handle_sigint),
            (signal.SIGTERM, self._handle_sigterm),
        ):
            try:
                previous_handlers.append((signum, signal.signal(signum, handler)))
            except ValueError:
                pass  # not in the main thread

        try:
            result = self._run_phases(
                progress, workers, telemetry, span, pool, resume_from
            )
        except KeyboardInterrupt as exc:
            reason = getattr(exc, "reason", None) or "sigint"
            campaign_id = self._abort(telemetry, reason=reason)
            hint = (
                f" — resume with run(resume_from={campaign_id})"
                if campaign_id is not None
                else ""
            )
            raise CampaignAborted(
                f"campaign interrupted{hint}",
                campaign_id=campaign_id,
                reason=reason,
            ) from None
        except BaseException:
            # Flush whatever telemetry and results exist so post-mortem
            # `repro obs` works, mark the campaign resumable, re-raise.
            self._abort(telemetry, reason="error")
            raise
        finally:
            for signum, previous in previous_handlers:
                try:
                    signal.signal(signum, previous)
                except (ValueError, TypeError):
                    pass
            # The metrics binding registers a global EDM listener;
            # unhook it so a later campaign (or pool phase) in the same
            # process never double-counts detections.
            self.target.metrics = None
            self._sink = None
        return result

    @staticmethod
    def _handle_sigint(_signum, _frame) -> None:
        raise KeyboardInterrupt

    @staticmethod
    def _handle_sigterm(_signum, _frame) -> None:
        raise AbortRequested("sigterm")

    def _abort(
        self, telemetry: Optional[Telemetry], reason: str = "sigint"
    ) -> Optional[int]:
        """Best-effort cleanup on interruption: flush streamed results,
        mark the campaign row aborted (resumable), flush telemetry.

        Never raises — the caller is already propagating the original
        failure.
        """
        campaign_id = self._campaign_id
        sink = self._sink
        stored = 0
        if sink is not None:
            try:
                sink.flush()
            except Exception:
                pass
            stored = sink.stored
        if campaign_id is not None and self.database is not None:
            try:
                self.database.abort_campaign(campaign_id)
            except Exception:
                pass
        if telemetry is not None:
            try:
                telemetry.emit(
                    "campaign_aborted",
                    ts=now(),
                    campaign_id=campaign_id,
                    completed=stored,
                    reason=reason,
                )
                telemetry.finish()
            except Exception:
                pass
            try:
                self._write_manifest(telemetry, "aborted", self._workers)
            except Exception:
                pass
        return campaign_id

    def _write_manifest(
        self,
        telemetry: Optional[Telemetry],
        status: str,
        workers: int,
        wall_seconds: Optional[float] = None,
    ) -> None:
        """(Re)write the campaign's ``manifest.json`` sidecar.

        The manifest maps the event stream back to its identity and
        artifacts — config fingerprint, seed, campaign id, database and
        snapshot paths — so ``repro obs status`` (and the service tier
        above it) can correlate a log with its stored results without
        parsing either.
        """
        if telemetry is None or telemetry.manifest_path is None:
            return
        config = self.config
        write_manifest(
            telemetry.manifest_path,
            {
                "status": status,
                "name": config.name,
                "seed": config.seed,
                "faults": config.faults,
                "iterations": config.iterations,
                "workers": workers,
                "fingerprint": config_fingerprint(config),
                "campaign_id": self._campaign_id,
                "wall_seconds": wall_seconds,
                "updated_ts": now(),
                "artifacts": {
                    "events": telemetry.events.path,
                    "database": (
                        self.database.path if self.database is not None else None
                    ),
                    "metrics_snapshot": (
                        telemetry.snapshotter.path
                        if telemetry.snapshotter is not None
                        else None
                    ),
                },
            },
        )

    def _run_phases(
        self,
        progress,
        workers: int,
        telemetry: Optional[Telemetry],
        span,
        pool: Optional[ReferencePool],
        resume_from: Optional[int],
    ) -> CampaignResult:
        config = self.config
        with span("campaign"):
            with span("reference_run"):
                reference = self.target.run_reference(
                    record_access=config.prune or config.collapse
                )
                if telemetry is not None and telemetry.metrics is not None:
                    telemetry.metrics.gauge("reference_instructions").set(
                        reference.total_instructions
                    )
                    # What one worker initialisation would ship.  Set in
                    # _run_phases (not the worker fan-out) so serial and
                    # parallel registries stay identical — a tested
                    # invariant.
                    telemetry.metrics.gauge("reference_payload_bytes").set(
                        len(pickle.dumps(reference))
                    )
            with span("set_up"):
                space = self.location_space()
                rng = np.random.default_rng(config.seed)
                plan = sample_fault_plan(
                    space=space,
                    total_instructions=reference.total_instructions,
                    count=config.faults,
                    rng=rng,
                )
                partition_sizes = {
                    partition: space.partition_size(partition)
                    for partition in space.partitions
                }

            # Open (or reopen) the campaign row; completed experiments of
            # a resumed campaign are reloaded and never re-simulated.
            resumed_results: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
            campaign_id: Optional[int] = None
            sink: Optional[ResultSink] = None
            if self.database is not None:
                fingerprint = config_fingerprint(config)
                if resume_from is not None:
                    with span("resume"):
                        resumed_results = self._load_resume_state(
                            resume_from, fingerprint, plan
                        )
                        campaign_id = resume_from
                        if telemetry is not None:
                            if telemetry.metrics is not None:
                                telemetry.metrics.counter(
                                    "resumed_experiments"
                                ).inc(len(resumed_results))
                            telemetry.emit(
                                "campaign_resumed",
                                ts=now(),
                                campaign_id=campaign_id,
                                completed=len(resumed_results),
                            )
                else:
                    campaign_id = self.database.begin_campaign(
                        config, partition_sizes, fingerprint
                    )
                sink = ResultSink(
                    self.database, campaign_id, config.recovery.db_batch
                )
            self._sink = sink
            self._campaign_id = campaign_id
            self._workers = workers
            if telemetry is not None:
                # Leftover shards of an earlier aborted run over the same
                # path would feed stale records to live status polls (and
                # the end-of-run merge); the manifest makes the fresh run
                # discoverable before its first experiment lands.
                telemetry.remove_stale_shards()
                self._write_manifest(telemetry, "running", workers)
                telemetry.checkpoint()

            # Pre-classify the remainder against the def/use liveness
            # map: predicted experiments are synthesised from the
            # reference and never enter the injection loop below.
            remaining: List[Tuple[int, FaultDescriptor]] = [
                (i, fault)
                for i, fault in enumerate(plan)
                if i not in resumed_results
            ]
            predicted_results: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
            live_plan: List[Tuple[int, FaultDescriptor]] = remaining
            if config.prune:
                with span("pruning"):
                    liveness = self.target.liveness
                    if liveness is None:
                        raise CampaignError(
                            "pruning requested but no liveness map recorded"
                        )
                    pruned = preclassify_pairs(remaining, liveness)
                    live_plan = pruned.live
                    for index, fault, classification in pruned.predicted:
                        run = synthesize_run(fault, classification, reference)
                        predicted_results[index] = (
                            run,
                            self._classify(run, reference.outputs),
                        )
                    if telemetry is not None and telemetry.metrics is not None:
                        for _i, _f, classification in pruned.predicted:
                            telemetry.metrics.counter(
                                "pruned_experiments",
                                prediction=classification.value,
                            ).inc()
            # Equivalence collapse: group the live remainder into
            # outcome-equivalence classes; only class representatives
            # stay in the live plan, the members replay their
            # representative's simulated result once it exists.
            equivalence_classes: Dict[int, List[Tuple[int, FaultDescriptor]]] = {}
            if config.collapse:
                with span("collapse"):
                    liveness = self.target.liveness
                    if liveness is None:
                        raise CampaignError(
                            "collapse requested but no liveness map recorded"
                        )
                    collapsed = collapse_live_plan(live_plan, liveness)
                    live_plan = collapsed.representatives
                    equivalence_classes = collapsed.members
                    if telemetry is not None:
                        if telemetry.metrics is not None:
                            telemetry.metrics.counter(
                                "collapsed_experiments"
                            ).inc(collapsed.collapsed)
                            telemetry.metrics.counter(
                                "equivalence_classes"
                            ).inc(collapsed.classes)
                        telemetry.emit(
                            "equivalence_collapse",
                            ts=now(),
                            live=len(live_plan) + collapsed.collapsed,
                            representatives=len(live_plan),
                            classes=collapsed.classes,
                            collapsed=collapsed.collapsed,
                        )
            if telemetry is not None and telemetry.metrics is not None:
                telemetry.metrics.counter("simulated_experiments").inc(
                    len(live_plan)
                )

            started = time.perf_counter()
            with span("injection"):
                if workers <= 1:
                    experiments, outcomes = self._run_serial(
                        plan,
                        reference,
                        telemetry,
                        progress,
                        predicted_results,
                        resumed_results,
                        sink,
                        live_plan=live_plan,
                        equivalence_classes=equivalence_classes,
                    )
                else:
                    experiments, outcomes = self._run_parallel(
                        live_plan,
                        len(plan),
                        workers,
                        progress=progress,
                        telemetry=telemetry,
                        predicted_results=predicted_results,
                        resumed_results=resumed_results,
                        pool=pool,
                        sink=sink,
                        equivalence_classes=equivalence_classes,
                    )
            wall = time.perf_counter() - started

            with span("analysis"):
                result = CampaignResult(
                    config=config,
                    experiments=experiments,
                    outcomes=outcomes,
                    reference_outputs=list(reference.outputs),
                    partition_sizes=partition_sizes,
                    wall_seconds=wall,
                )
                if sink is not None:
                    sink.flush()
                    self.database.finish_campaign(campaign_id, wall)

        if telemetry is not None:
            telemetry.emit(
                "campaign_finished", **campaign_finished_event(outcomes, wall)
            )
            telemetry.finish()
            self._write_manifest(telemetry, "complete", workers, wall_seconds=wall)
        return result

    def _load_resume_state(
        self,
        campaign_id: int,
        fingerprint: Dict[str, object],
        plan: List[FaultDescriptor],
    ) -> Dict[int, Tuple[ExperimentRun, Outcome]]:
        """Reload a stored campaign's completed experiments.

        Refuses when the stored configuration fingerprint diverges from
        the current one, and cross-checks every stored fault against the
        re-derived plan — any drift means the stored indices would not
        identify the same experiments.
        """
        check_fingerprint(
            self.database.campaign_fingerprint(campaign_id), fingerprint
        )
        stored = self.database.completed_experiments(campaign_id)
        resumed: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
        for index, experiment in stored.items():
            if index >= len(plan):
                raise CampaignError(
                    f"stored experiment index {index} exceeds the plan "
                    f"({len(plan)} faults) — cannot resume"
                )
            fault = plan[index]
            if (
                fault.target.partition != experiment.partition
                or fault.target.element != experiment.element
                or fault.target.bit != experiment.bit
                or fault.time != experiment.time
            ):
                raise CampaignError(
                    f"stored experiment {index} ({experiment.partition}/"
                    f"{experiment.element}[{experiment.bit}]@t={experiment.time}) "
                    f"does not match the re-derived plan ({fault.label()}) "
                    "— cannot resume"
                )
            run = ExperimentRun(
                fault=fault,
                outputs=[],
                early_exit_iteration=experiment.early_exit_iteration,
                timed_out=experiment.timed_out,
                instructions_executed=experiment.instructions_executed,
                predicted=experiment.provenance == "predicted",
                quarantined=experiment.provenance == "quarantined",
                equivalent=experiment.provenance == "equivalent",
                representative_index=experiment.representative_index,
            )
            resumed[index] = (run, experiment.outcome)
        self.database.reopen_campaign(campaign_id)
        return resumed

    # -- serial execution ------------------------------------------------------
    def _replay_equivalents(
        self, rep_index, run, outcome, equivalence_classes, by_index, streamable
    ) -> None:
        """Copy a representative's simulated result to its class members.

        A quarantined stand-in proves nothing about the class, so its
        members are left unresolved and fall through to individual
        simulation.  The classification is reused as-is: it depends
        only on fields :func:`replay_equivalent` copies verbatim.
        """
        members = equivalence_classes.get(rep_index)
        if not members or run.quarantined:
            return
        for m_index, m_fault in members:
            if m_index in by_index:
                continue
            m_run = replay_equivalent(m_fault, run, rep_index)
            by_index[m_index] = (m_run, outcome)
            streamable.add(m_index)

    def _run_batch_recovered(
        self, group, reference_outputs, telemetry
    ) -> List[Tuple[ExperimentRun, Outcome]]:
        """One batched group with the same failure semantics as the
        per-experiment path: any failure (chaos included) falls back to
        :meth:`_run_one_recovered` per fault, which owns all retry,
        backoff and quarantine accounting."""
        chaos = self.config.chaos
        try:
            if chaos is not None and chaos.mode == "raise":
                for index, _fault in group:
                    chaos_maybe_crash(chaos, index)
            runs = self.target.run_experiment_batch(
                [fault for _index, fault in group], self.config.early_exit
            )
        except KeyboardInterrupt:
            raise
        except Exception:
            return [
                self._run_one_recovered(index, fault, reference_outputs, telemetry)
                for index, fault in group
            ]
        return [(run, self._classify(run, reference_outputs)) for run in runs]

    def _run_serial(
        self,
        plan,
        reference,
        telemetry,
        progress,
        predicted_results,
        resumed_results,
        sink,
        live_plan=None,
        equivalence_classes=None,
    ):
        by_index: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
        by_index.update(resumed_results)
        by_index.update(predicted_results)
        equivalence_classes = equivalence_classes or {}
        # Indices the sink must store besides the freshly simulated
        # ones: predictions, batched pre-simulations, equivalence
        # replays.
        streamable = set(predicted_results)
        heartbeat_every = self.config.recovery.heartbeat_every
        started = time.perf_counter()
        if live_plan and (self.config.batch_size > 1 or self.config.locality_sort):
            # Pre-simulation: live faults run ahead of the plan loop —
            # in injection-time order when locality sorting is on (so
            # consecutive experiments restore to nearby boundaries, the
            # delta cursor's cheap path), and in groups through the
            # shared dispatch loop when batching is on.  The plan loop
            # below then streams and reports the stored pairs in plan
            # order, exactly as the one-at-a-time path would have.
            pending = [(i, f) for i, f in live_plan if i not in by_index]
            if self.config.locality_sort:
                pending.sort(key=lambda item: item[1].time)
            size = self.config.batch_size
            if size > 1:
                for start in range(0, len(pending), size):
                    group = pending[start : start + size]
                    pairs = self._run_batch_recovered(
                        group, reference.outputs, telemetry
                    )
                    for (i, _fault), pair in zip(group, pairs):
                        by_index[i] = pair
                        streamable.add(i)
                        self._replay_equivalents(
                            i, pair[0], pair[1], equivalence_classes, by_index, streamable
                        )
            else:
                for i, fault in pending:
                    pair = self._run_one_recovered(
                        i, fault, reference.outputs, telemetry
                    )
                    by_index[i] = pair
                    streamable.add(i)
                    self._replay_equivalents(
                        i, pair[0], pair[1], equivalence_classes, by_index, streamable
                    )
        for i, fault in enumerate(plan):
            pair = by_index.get(i)
            fresh = pair is None
            if fresh:
                pair = self._run_one_recovered(i, fault, reference.outputs, telemetry)
                by_index[i] = pair
                self._replay_equivalents(
                    i, pair[0], pair[1], equivalence_classes, by_index, streamable
                )
            run, outcome = pair
            if sink is not None and (fresh or i in streamable):
                sink.add(i, run, outcome)
            if telemetry is not None and i not in resumed_results:
                if telemetry.metrics is not None:
                    record_outcome(telemetry.metrics, run, outcome)
                telemetry.emit(
                    "experiment_finished",
                    **experiment_event(i, run, outcome),
                )
            if progress is not None:
                progress(i + 1, len(plan), outcome)
            if (
                telemetry is not None
                and heartbeat_every
                and (i + 1) % heartbeat_every == 0
            ):
                # The serial loop is "worker 0": same liveness surface as
                # a parallel run, flushed so live polls see progress.
                telemetry.emit(
                    "worker_heartbeat",
                    **heartbeat_event(
                        worker=0,
                        done=i + 1,
                        total=len(plan),
                        seconds=time.perf_counter() - started,
                    ),
                )
                telemetry.checkpoint()
        if sink is not None:
            sink.flush()
        if telemetry is not None:
            stats = self.target.take_dataplane_stats()
            if stats is not None:
                telemetry.emit("dataplane_stats", ts=now(), worker=0, **stats)
            telemetry.checkpoint()
        experiments = [by_index[i][0] for i in range(len(plan))]
        outcomes = [by_index[i][1] for i in range(len(plan))]
        return experiments, outcomes

    def _run_one_recovered(
        self, index, fault, reference_outputs, telemetry
    ) -> Tuple[ExperimentRun, Outcome]:
        """One in-process experiment with retry, backoff and quarantine.

        KeyboardInterrupt always propagates (the abort path handles it);
        any other failure is retried up to the policy's budget and then
        quarantined, so one poison experiment never sinks the campaign.
        ``'exit'``-mode chaos is skipped here — it models a worker
        process kill and must never take down the parent.
        """
        policy = self.config.recovery
        chaos = self.config.chaos
        failures = 0
        while True:
            try:
                if chaos is not None and chaos.mode == "raise":
                    chaos_maybe_crash(chaos, index)
                run = self.target.run_experiment(
                    fault, early_exit=self.config.early_exit
                )
                return run, self._classify(run, reference_outputs)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                failures += 1
                if telemetry is not None:
                    if telemetry.metrics is not None:
                        telemetry.metrics.counter("retries").inc()
                    telemetry.emit(
                        "chunk_requeued",
                        ts=now(),
                        experiments=1,
                        attempt=failures - 1,
                        killed=False,
                        reason=repr(exc),
                    )
                if failures >= policy.max_chunk_retries:
                    return self._quarantine_pair(index, fault, telemetry)
                policy.sleep(backoff_seconds(failures - 1, policy))

    def _quarantine_pair(
        self, index, fault, telemetry
    ) -> Tuple[ExperimentRun, Outcome]:
        """Record one experiment as quarantined (counter + event only;
        the caller persists and classifies it like any other result)."""
        run = quarantined_run(fault, self.target.reference.outputs)
        outcome = self._classify(run, self.target.reference.outputs)
        if telemetry is not None:
            if telemetry.metrics is not None:
                telemetry.metrics.counter("quarantined_experiments").inc()
            telemetry.emit(
                "experiment_quarantined",
                ts=now(),
                index=index,
                partition=fault.target.partition,
                element=fault.target.element,
                bit=fault.target.bit,
                injection_time=fault.time,
            )
        return run, outcome

    # -- parallel execution ----------------------------------------------------
    def _run_parallel(
        self,
        live_plan,
        total,
        workers,
        progress=None,
        telemetry=None,
        predicted_results=None,
        resumed_results=None,
        pool=None,
        sink=None,
        equivalence_classes=None,
    ):
        """Fan the live plan out over worker processes, preserving plan order.

        ``live_plan`` holds ``(plan index, fault)`` pairs that need
        simulation; ``predicted_results`` maps plan indices to their
        pruning-synthesised pairs and ``resumed_results`` to pairs
        reloaded from the database.  Chunk results are consumed as they
        complete so the ``progress`` callback reports during parallel
        runs too; worker telemetry (metrics registries, event shards) is
        merged at the end.

        This is the self-healing loop: a chunk whose worker raises is
        requeued with capped exponential backoff, a chunk that breaks
        the process pool triggers a pool rebuild, repeatedly failing
        chunks are bisected to isolate the poison experiment, an
        experiment that kills a worker twice (or exhausts its retry
        budget) is quarantined, and when pool rebuilds are exhausted the
        remainder runs serially in this process.  Every successful
        chunk's results are streamed to the database before the next
        chunk is consumed.

        Predicted experiments are recorded into the parent's registry and
        written to a pseudo-shard (submission id 0, which no worker
        uses) so the shard merge interleaves their events back into plan
        order alongside the workers' simulated ones.

        With equivalence collapse the live plan holds only class
        representatives; each member's result is replayed in the parent
        as its representative's chunk arrives.  A representative that
        ends up quarantined replays nothing — its members are requeued
        as an ordinary chunk and simulated individually.
        """
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        config = self.config
        policy = config.recovery
        predicted_results = predicted_results or {}
        resumed_results = resumed_results or {}
        equivalence_classes = equivalence_classes or {}
        metrics_enabled = telemetry is not None and telemetry.metrics is not None
        reference_outputs = self.target.reference.outputs
        payload = WorkerPayload(
            workload=config.workload,
            iterations=config.iterations,
            watchdog_factor=config.watchdog_factor,
            environment_factory=config.environment_factory,
            reference=(self.target.reference if config.share_reference else None),
            fast_dispatch=config.fast_dispatch,
            incremental_hash=config.incremental_hash,
            delta_dataplane=config.delta_dataplane,
        )
        own_pool = pool is None
        if pool is None:
            pool = ReferencePool(workers)
        by_index: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
        by_index.update(resumed_results)
        by_index.update(predicted_results)
        # ``(submission id, path)`` pairs; ordered numerically before the
        # merge.  Sorting the bare paths would be lexicographic —
        # ``shard10`` before ``shard2`` — as soon as submissions reach 10.
        shards: List[Tuple[int, str]] = []
        done = 0
        if predicted_results and telemetry is not None:
            if telemetry.metrics is not None:
                for run, outcome in predicted_results.values():
                    record_outcome(telemetry.metrics, run, outcome)
            predicted_shard = telemetry.shard_path(0)
            if predicted_shard is not None:
                with EventLog(predicted_shard) as shard_log:
                    for index in sorted(predicted_results):
                        run, outcome = predicted_results[index]
                        shard_log.emit(
                            "experiment_finished",
                            **experiment_event(index, run, outcome),
                        )
                shards.append((0, predicted_shard))
        if sink is not None:
            for index in sorted(predicted_results):
                run, outcome = predicted_results[index]
                sink.add(index, run, outcome)
            sink.flush()
        for index in sorted(set(resumed_results) | set(predicted_results)):
            done += 1
            if progress is not None:
                progress(done, total, by_index[index][1])

        # Chunk dispatch runs through the lease-based work queue — in
        # the campaign database when there is one (so the queue tables
        # are inspectable next to the results), else a private in-memory
        # queue.  The parent leases jobs on behalf of its pool workers;
        # retry, split and quarantine accounting is the queue's ``nack``.
        work = (
            self.database.work_queue(policy)
            if self.database is not None
            else WorkQueue(policy=policy)
        )
        topic = f"campaign-{self._campaign_id or 0}-chunks"
        # Stale rows from an earlier aborted run over the same campaign
        # would replay already-completed chunks; this run re-derives its
        # remaining plan from the results table instead.
        work.purge(topic)
        lease_worker = f"pool-{os.getpid()}"
        reservoir: deque = deque()
        chunk_size = 0
        if config.locality_sort:
            # Locality-aware scheduling: the live plan is executed in
            # injection-time order (consecutive experiments restore to
            # nearby boundaries, the delta cursor's cheap path) and cut
            # into contiguous chunks drawn on demand, sized so one chunk
            # costs about ``target_chunk_seconds`` at the measured
            # throughput — small chunks near the end keep the straggler
            # tail short.  Chunks enter the queue as they are drawn (a
            # targeted lease keeps an older requeued job from being
            # claimed in their place).  Plan order is restored when
            # results arrive, so outcomes, storage and merged telemetry
            # are unchanged.
            reservoir.extend(sorted(live_plan, key=lambda item: item[1].time))
            chunk_size = max(
                policy.min_chunk_size,
                min(
                    policy.max_chunk_size,
                    max(1, len(reservoir) // (workers * 8)),
                ),
            )
        else:
            for chunk_items in (live_plan[i::workers] for i in range(workers)):
                if chunk_items:
                    work.enqueue(list(chunk_items), topic=topic)
        active: Dict[object, Tuple[LeasedJob, int, Optional[str]]] = {}
        submission = 0
        rebuilds = 0
        fallback = False

        def counter_inc(name: str, amount: int = 1) -> None:
            if metrics_enabled:
                telemetry.metrics.counter(name).inc(amount)

        def emit(event: str, **payload_kv) -> None:
            if telemetry is not None:
                telemetry.emit(event, **payload_kv)

        def record_result(index, run, outcome) -> None:
            nonlocal done
            by_index[index] = (run, outcome)
            done += 1
            if sink is not None:
                sink.add(index, run, outcome)
            if progress is not None:
                progress(done, total, outcome)

        def quarantine(index, fault) -> None:
            run, outcome = self._quarantine_pair(index, fault, telemetry)
            if metrics_enabled:
                record_outcome(telemetry.metrics, run, outcome)
            emit("experiment_finished", **experiment_event(index, run, outcome))
            record_result(index, run, outcome)
            if sink is not None:
                sink.flush()
            # A quarantined representative proves nothing about its
            # equivalence class: simulate the members individually.
            members = equivalence_classes.pop(index, None)
            if members:
                work.enqueue(list(members), topic=topic)

        def replay_members(index, run, outcome) -> None:
            """Replay an arrived representative's result for its class."""
            for m_index, m_fault in equivalence_classes.get(index, ()):
                if m_index in by_index:
                    continue
                m_run = replay_equivalent(m_fault, run, index)
                if metrics_enabled:
                    record_outcome(telemetry.metrics, m_run, outcome)
                emit(
                    "experiment_finished",
                    **experiment_event(m_index, m_run, outcome),
                )
                record_result(m_index, m_run, outcome)

        def handle_failure(
            job: LeasedJob,
            shard,
            killed: bool,
            reason: str,
            certain: bool = True,
        ):
            """Nack one failed job: the queue requeues, splits or — once
            a single experiment crosses its kill/failure budget —
            declares it exhausted, at which point it is quarantined here.

            ``certain`` says the failure is attributable to this job
            (an ordinary exception always is; a pool break only when the
            job was alone in flight).  Only certain failures count
            toward a single experiment's quarantine thresholds.
            """
            if shard is not None and os.path.exists(shard):
                os.remove(shard)  # discard the dead worker's partial events
            verdict = work.nack(
                job.lease_id, killed=killed, certain=certain, reason=reason
            )
            if verdict.action == "exhausted":
                index, fault = verdict.items[0]
                quarantine(index, fault)
                return
            counter_inc("requeued_chunks")
            counter_inc("retries", len(job.items))
            emit(
                "chunk_requeued",
                ts=now(),
                experiments=len(job.items),
                attempt=job.attempt,
                killed=killed,
                reason=reason,
            )
            emit(
                "job_state",
                ts=now(),
                job=job.job_id,
                state=verdict.action,
                attempt=verdict.attempt,
                experiments=len(job.items),
                suspect=verdict.suspect,
            )
            # Pool mode owns the backoff sleep (the queue leaves the
            # requeued job immediately available), so tests can inject a
            # no-op sleep exactly as before.
            policy.sleep(verdict.delay)

        def submit_job(job: LeasedJob) -> bool:
            """Submit one leased job; False when the pool turned out broken."""
            nonlocal submission
            submission += 1
            shard = (
                telemetry.shard_path(submission) if telemetry is not None else None
            )
            args = (
                job.items,
                submission,
                shard,
                metrics_enabled,
                config.early_exit,
                config.chaos,
                policy.heartbeat_every,
                config.batch_size,
            )
            try:
                future = pool.submit(_run_chunk, args)
            except BrokenProcessPool:
                # The job never ran: hand its lease back untouched so it
                # keeps its place at the front of the queue.
                work.release(job.lease_id)
                return False
            active[future] = (job, submission, shard)
            emit(
                "lease_granted",
                ts=now(),
                job=job.job_id,
                lease=job.lease_id,
                worker=submission,
                experiments=len(job.items),
                attempt=job.attempt,
                suspect=job.suspect,
            )
            return True

        try:
            if pool.prepare(payload):
                # A warm pool was torn down because its workers were
                # built for an incompatible payload — surface the cost.
                counter_inc("pool_respawns")
                emit(
                    "worker_pool_respawned",
                    ts=now(),
                    reason=pool.last_respawn_reason,
                )
            while (work.pending(topic) or reservoir or active) and not fallback:
                broken = False
                # Suspect jobs (in flight during an earlier pool break —
                # a break takes down *every* in-flight future, so which
                # chunk killed the worker is unknowable from the
                # exception alone) run in isolation, one in flight at a
                # time, so a repeat break has certain attribution; only
                # certain kills count toward quarantine.  Without this,
                # innocent experiments that happened to share the pool
                # with a poison one would accumulate its kills and get
                # quarantined alongside it.
                while not broken and not active:
                    job = work.lease(
                        lease_worker, topic=topic, suspect_only=True
                    )
                    if job is None:
                        break
                    broken = not submit_job(job)
                if not active:
                    while not broken:
                        job = work.lease(lease_worker, topic=topic)
                        if job is None:
                            break
                        broken = not submit_job(job)
                # Draw fresh chunks from the sorted reservoir to keep
                # every worker busy — but never alongside a suspect,
                # whose isolation is what makes a repeat pool break
                # attributable.
                if not broken and not any(
                    entry[0].suspect for entry in active.values()
                ):
                    while reservoir and not broken and len(active) < workers:
                        items = [
                            reservoir.popleft()
                            for _ in range(min(chunk_size, len(reservoir)))
                        ]
                        job_id = work.enqueue(items, topic=topic)
                        job = work.lease(
                            lease_worker, topic=topic, job_id=job_id
                        )
                        if job is None:
                            break
                        broken = not submit_job(job)
                if active and not broken:
                    in_flight = len(active)
                    done_set, _pending = concurrent.futures.wait(
                        list(active), return_when=concurrent.futures.FIRST_COMPLETED
                    )
                    for future in done_set:
                        job, chunk_submission, shard = active.pop(future)
                        try:
                            (_sub, chunk_result, registry_dict, seconds) = (
                                future.result()
                            )
                        except BrokenProcessPool:
                            broken = True
                            handle_failure(
                                job,
                                shard,
                                killed=True,
                                reason="worker process died (pool broken)",
                                certain=in_flight == 1,
                            )
                        except Exception as exc:
                            handle_failure(
                                job, shard, killed=False, reason=repr(exc)
                            )
                        else:
                            # The ack is idempotent by plan index: only
                            # newly acked indices are recorded, so a
                            # result that arrives twice (e.g. a future
                            # that completed in the same instant its
                            # pool broke and was requeued) counts once.
                            newly = set(
                                work.ack(
                                    job.lease_id,
                                    [i for i, _run, _outcome in chunk_result],
                                )
                            )
                            for index, run, outcome in chunk_result:
                                if index not in newly:
                                    continue
                                record_result(index, run, outcome)
                                replay_members(index, run, outcome)
                            if sink is not None:
                                sink.flush()
                            if (
                                config.locality_sort
                                and chunk_result
                                and seconds > 0
                            ):
                                # Throughput feedback: aim the next chunk
                                # at ~target_chunk_seconds of work.
                                rate = len(chunk_result) / seconds
                                new_size = max(
                                    policy.min_chunk_size,
                                    min(
                                        policy.max_chunk_size,
                                        int(rate * policy.target_chunk_seconds),
                                    ),
                                )
                                if new_size != chunk_size:
                                    chunk_size = new_size
                                    emit(
                                        "chunk_resized",
                                        ts=now(),
                                        size=new_size,
                                        rate=rate,
                                    )
                            if telemetry is not None:
                                if registry_dict is not None:
                                    telemetry.metrics.merge(
                                        MetricsRegistry.from_dict(registry_dict)
                                    )
                                if shard is not None:
                                    shards.append((chunk_submission, shard))
                                telemetry.emit(
                                    "worker_chunk_done",
                                    ts=time.time(),
                                    worker=chunk_submission,
                                    experiments=len(chunk_result),
                                    seconds=seconds,
                                )
                                # Chunk boundary: push the live surface
                                # (event flush + due metrics snapshot)
                                # so status polls see this chunk.
                                telemetry.checkpoint()
                if broken:
                    # The pool is unusable: every in-flight chunk is
                    # lost.  Requeue them as suspects (any of them may
                    # have killed the worker) and rebuild, degrading to
                    # serial when the budget is out.
                    for future, (job, _sub, shard) in list(active.items()):
                        future.cancel()
                        handle_failure(
                            job,
                            shard,
                            killed=True,
                            reason="chunk lost to a broken worker pool",
                            certain=False,
                        )
                    active.clear()
                    rebuilds += 1
                    rebuilt = False
                    if rebuilds <= policy.max_pool_rebuilds:
                        emit("worker_pool_rebuilt", ts=now(), rebuilds=rebuilds)
                        try:
                            pool.rebuild(payload)
                            rebuilt = True
                        except Exception:
                            rebuilt = False
                    if not rebuilt:
                        fallback = True
        except BaseException:
            # Interrupted (SIGINT) or crashed mid-injection: the chunks
            # that did complete have both durable results (the sink
            # flushed them) and closed shard files — splice those events
            # into the main log before propagating, so the on-disk
            # stream matches the database and a resumed run can append
            # the remainder to a complete history.
            try:
                self._merge_worker_shards(telemetry, shards)
            except Exception:
                pass
            raise
        finally:
            if own_pool:
                pool.close()

        try:
            if fallback and (work.pending(topic) or reservoir):
                # Graceful degradation: pull every still-pending job out
                # of the queue and run the remainder in this process.
                leftover = work.drain(topic)
                leftover.extend(reservoir)
                reservoir.clear()
                emit("serial_fallback", ts=now(), experiments=len(leftover))
                pending = deque(leftover)
                while pending:
                    index, fault = pending.popleft()
                    if index in by_index:
                        continue
                    run, outcome = self._run_one_recovered(
                        index, fault, reference_outputs, telemetry
                    )
                    if metrics_enabled:
                        record_outcome(telemetry.metrics, run, outcome)
                    emit(
                        "experiment_finished", **experiment_event(index, run, outcome)
                    )
                    record_result(index, run, outcome)
                    if run.quarantined:
                        # No replay from a stand-in result: the class
                        # members join the serial queue instead.
                        pending.extend(equivalence_classes.get(index, ()))
                    else:
                        replay_members(index, run, outcome)
                if sink is not None:
                    sink.flush()
        except BaseException:
            try:
                self._merge_worker_shards(telemetry, shards)
            except Exception:
                pass
            raise

        self._merge_worker_shards(telemetry, shards)
        work.close()
        if telemetry is not None:
            # Restores the *parent* target performed (the serial
            # fallback); zero in a healthy parallel run.
            stats = self.target.take_dataplane_stats()
            if stats is not None and any(stats.values()):
                emit("dataplane_stats", ts=now(), worker=0, **stats)
        experiments = []
        outcomes = []
        for index in range(total):
            run, outcome = by_index[index]
            experiments.append(run)
            outcomes.append(outcome)
        return experiments, outcomes

    @staticmethod
    def _merge_worker_shards(
        telemetry: Optional[Telemetry], shards: List[Tuple[int, str]]
    ) -> None:
        """Splice completed worker shards into the main event log.

        Consumes ``shards`` so a second call (e.g. the normal-path merge
        after an exception-path merge already ran) is a no-op.
        """
        if telemetry is not None and telemetry.events is not None and shards:
            merge_event_shards(
                telemetry.events, [path for _index, path in sorted(shards)]
            )
            shards.clear()
            telemetry.events.flush()

    @staticmethod
    def _classify(run: ExperimentRun, reference_outputs: List[float]) -> Outcome:
        detected_by = (
            run.detection.mechanism.value if run.detection is not None else None
        )
        return classify_experiment(
            observed=run.outputs,
            reference=reference_outputs,
            detected_by=detected_by,
            final_state_differs=run.final_state_differs,
        )
