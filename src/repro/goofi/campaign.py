"""Campaign orchestration: configuration, set-up, injection, analysis.

:class:`ScifiCampaign` drives a full scan-chain fault-injection campaign
against the simulated CPU, following the paper's §3.3 flow and producing
a Tables 2/3-ready :class:`~repro.analysis.report.CampaignSummary`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.classify import Outcome, classify_experiment
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import CampaignError
from repro.faults.models import FaultDescriptor, LocationSpace, sample_fault_plan
from repro.goofi.database import CampaignDatabase
from repro.goofi.environment import EngineEnvironment
from repro.goofi.pruning import preclassify_plan, synthesize_run
from repro.goofi.target import ExperimentRun, TargetSystem
from repro.obs.events import EventLog, merge_event_shards
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    Telemetry,
    campaign_finished_event,
    campaign_started_event,
    experiment_event,
    record_outcome,
)
from repro.plant.profiles import ITERATIONS
from repro.tcc.codegen import CompiledProgram


@dataclass
class CampaignConfig:
    """Set-up phase parameters (§3.3.2).

    Attributes:
        workload: the compiled workload to inject into.
        name: campaign label used in summaries and the database.
        faults: number of fault-injection experiments.
        seed: RNG seed for the uniform location/time sampling.
        iterations: loop iterations per experiment (paper: 650).
        partitions: restrict injection to these scan-chain partitions
            (default: all — ``cache`` and ``registers``).
        watchdog_factor: experiment watchdog as a multiple of the longest
            fault-free iteration.
        early_exit: enable the provably-safe early termination when the
            faulted state re-converges to the reference.
        prune: record the reference run's def/use access trace and skip
            simulating faults whose outcome it proves (overwritten before
            the next read, or never touched again) — the predicted
            experiments classify identically to simulated ones, see
            ``docs/performance.md``.  Off by default.
        environment_factory: builds the environment simulator.
    """

    workload: CompiledProgram
    name: str = "campaign"
    faults: int = 500
    seed: int = 2001
    iterations: int = ITERATIONS
    partitions: Optional[List[str]] = None
    watchdog_factor: float = 10.0
    early_exit: bool = True
    prune: bool = False
    environment_factory: Callable[[], EngineEnvironment] = EngineEnvironment

    def __post_init__(self) -> None:
        if self.faults <= 0:
            raise CampaignError("faults must be positive")
        if self.iterations <= 0:
            raise CampaignError("iterations must be positive")


@dataclass
class CampaignResult:
    """All experiments of one campaign, classified.

    Attributes:
        config: the campaign configuration.
        experiments: raw per-experiment observations.
        outcomes: §4.1 classification per experiment (same order).
        reference_outputs: the golden output sequence.
        partition_sizes: injectable bits per partition.
        wall_seconds: total injection-phase wall time.
    """

    config: CampaignConfig
    experiments: List[ExperimentRun]
    outcomes: List[Outcome]
    reference_outputs: List[float]
    partition_sizes: dict
    wall_seconds: float = 0.0

    def summary(self) -> CampaignSummary:
        """Aggregate into a Tables 2/3-ready summary."""
        records = [
            ClassifiedExperiment(partition=run.fault.target.partition, outcome=outcome)
            for run, outcome in zip(self.experiments, self.outcomes)
        ]
        return CampaignSummary(
            records=records,
            partition_sizes=self.partition_sizes,
            name=self.config.name,
        )


def _null_span(_name: str):
    """The zero-overhead stand-in for a tracer span."""
    return nullcontext()


def _run_chunk(args):
    """Worker entry point: run one slice of a fault plan.

    Top-level (picklable) by necessity; builds its own target system,
    repeats the golden run (deterministic, so identical across workers)
    and executes its chunk.  ``chunk`` carries ``(plan index, fault)``
    pairs so telemetry can be re-ordered into plan order afterwards.

    When telemetry is enabled the worker records into its own
    :class:`~repro.obs.MetricsRegistry` (returned as a dict for the
    parent to merge) and writes ``experiment_finished`` events to its
    own shard file — worker processes never share a file descriptor.

    Returns ``(worker_index, results, registry_dict, seconds)`` where
    ``results`` holds ``(plan index, run, outcome)`` triples.
    """
    (
        workload,
        iterations,
        watchdog_factor,
        early_exit,
        environment_factory,
        chunk,
        worker_index,
        shard_path,
        metrics_enabled,
    ) = args
    registry = MetricsRegistry() if metrics_enabled else None
    events = EventLog(shard_path) if shard_path else None
    target = TargetSystem(
        workload=workload,
        environment=environment_factory(),
        iterations=iterations,
        watchdog_factor=watchdog_factor,
        metrics=registry,
    )
    started = time.perf_counter()
    reference = target.run_reference()
    results = []
    for index, fault in chunk:
        run = target.run_experiment(fault, early_exit=early_exit)
        outcome = ScifiCampaign._classify(run, reference.outputs)
        if registry is not None:
            record_outcome(registry, run, outcome)
        if events is not None:
            events.emit("experiment_finished", **experiment_event(index, run, outcome))
        results.append((index, run, outcome))
    if events is not None:
        events.close()
    seconds = time.perf_counter() - started
    return (
        worker_index,
        results,
        registry.to_dict() if registry is not None else None,
        seconds,
    )


class ScifiCampaign:
    """A scan-chain implemented fault-injection campaign (§3.3.1 SCIFI)."""

    def __init__(
        self,
        config: CampaignConfig,
        database: Optional[CampaignDatabase] = None,
    ):
        self.config = config
        self.database = database
        self.target = TargetSystem(
            workload=config.workload,
            environment=config.environment_factory(),
            iterations=config.iterations,
            watchdog_factor=config.watchdog_factor,
        )

    def location_space(self) -> LocationSpace:
        """The injectable locations after partition restriction."""
        space = self.target.scan_chain.location_space()
        if self.config.partitions:
            targets = [t for t in space if t.partition in self.config.partitions]
            if not targets:
                raise CampaignError(
                    f"no targets in partitions {self.config.partitions!r}"
                )
            space = LocationSpace(targets)
        return space

    def run(
        self,
        progress: Optional[Callable[[int, int, Outcome], None]] = None,
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> CampaignResult:
        """Execute the campaign: reference run, sampling, injection, analysis.

        Args:
            progress: optional callback ``(done, total, outcome)`` invoked
                after each experiment.  With ``workers > 1`` it fires as
                chunk results arrive, so ``done`` still counts every
                experiment but outcomes report in completion order.
            workers: number of worker processes.  ``1`` (default) runs
                serially in this process; ``N > 1`` deals the fault plan
                into N *strided* slices (``plan[i::N]``) executed in
                parallel.  Striding (rather than contiguous blocks)
                balances load even when plan order correlates with
                experiment cost — e.g. a time-sorted plan, where early
                injections simulate the longest suffix of the run and a
                contiguous split would hand one worker all of them.
                Results are bit-identical to the serial run (every
                experiment is independent and fully determined by its
                fault), just reordered back into plan order.
            telemetry: optional :class:`~repro.obs.Telemetry` bundle.
                When given, the run records phase spans, per-experiment
                metrics and JSONL events; per-worker registries/shards
                are merged so serial and parallel runs report identical
                aggregate telemetry.  ``None`` (default) is a no-op.
        """
        config = self.config
        span = telemetry.span if telemetry is not None else _null_span
        if telemetry is not None:
            telemetry.emit(
                "campaign_started", **campaign_started_event(config, workers)
            )
            if telemetry.metrics is not None and workers <= 1:
                self.target.metrics = telemetry.metrics

        with span("campaign"):
            with span("reference_run"):
                reference = self.target.run_reference(
                    record_access=config.prune
                )
                if telemetry is not None and telemetry.metrics is not None:
                    telemetry.metrics.gauge("reference_instructions").set(
                        reference.total_instructions
                    )
            with span("set_up"):
                space = self.location_space()
                rng = np.random.default_rng(config.seed)
                plan = sample_fault_plan(
                    space=space,
                    total_instructions=reference.total_instructions,
                    count=config.faults,
                    rng=rng,
                )
                partition_sizes = {
                    partition: space.partition_size(partition)
                    for partition in space.partitions
                }

            # Pre-classify against the def/use liveness map: predicted
            # experiments are synthesised from the reference and never
            # enter the injection loop below.
            predicted_results: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
            live_plan: List[Tuple[int, FaultDescriptor]] = list(enumerate(plan))
            if config.prune:
                with span("pruning"):
                    liveness = self.target.liveness
                    if liveness is None:
                        raise CampaignError(
                            "pruning requested but no liveness map recorded"
                        )
                    pruned = preclassify_plan(plan, liveness)
                    live_plan = pruned.live
                    for index, fault, classification in pruned.predicted:
                        run = synthesize_run(fault, classification, reference)
                        predicted_results[index] = (
                            run,
                            self._classify(run, reference.outputs),
                        )
                    if telemetry is not None and telemetry.metrics is not None:
                        for _i, _f, classification in pruned.predicted:
                            telemetry.metrics.counter(
                                "pruned_experiments",
                                prediction=classification.value,
                            ).inc()
            if telemetry is not None and telemetry.metrics is not None:
                telemetry.metrics.counter("simulated_experiments").inc(
                    len(live_plan)
                )

            started = time.perf_counter()
            with span("injection"):
                if workers <= 1:
                    by_index: Dict[int, Tuple[ExperimentRun, Outcome]] = dict(
                        predicted_results
                    )
                    for i, fault in enumerate(plan):
                        pair = by_index.get(i)
                        if pair is None:
                            run = self.target.run_experiment(
                                fault, early_exit=config.early_exit
                            )
                            outcome = self._classify(run, reference.outputs)
                            by_index[i] = (run, outcome)
                        else:
                            run, outcome = pair
                        if telemetry is not None:
                            if telemetry.metrics is not None:
                                record_outcome(telemetry.metrics, run, outcome)
                            telemetry.emit(
                                "experiment_finished",
                                **experiment_event(i, run, outcome),
                            )
                        if progress is not None:
                            progress(i + 1, len(plan), outcome)
                    experiments = [by_index[i][0] for i in range(len(plan))]
                    outcomes = [by_index[i][1] for i in range(len(plan))]
                else:
                    experiments, outcomes = self._run_parallel(
                        live_plan,
                        len(plan),
                        workers,
                        progress=progress,
                        telemetry=telemetry,
                        predicted_results=predicted_results,
                    )
            wall = time.perf_counter() - started

            with span("analysis"):
                result = CampaignResult(
                    config=config,
                    experiments=experiments,
                    outcomes=outcomes,
                    reference_outputs=list(reference.outputs),
                    partition_sizes=partition_sizes,
                    wall_seconds=wall,
                )
                if self.database is not None:
                    self.database.store_campaign(result)

        if telemetry is not None:
            telemetry.emit(
                "campaign_finished", **campaign_finished_event(outcomes, wall)
            )
            telemetry.finish()
        return result

    def _run_parallel(
        self,
        live_plan,
        total,
        workers,
        progress=None,
        telemetry=None,
        predicted_results=None,
    ):
        """Fan the live plan out over worker processes, preserving plan order.

        ``live_plan`` holds ``(plan index, fault)`` pairs that need
        simulation; ``predicted_results`` maps the remaining plan indices
        to their pruning-synthesised ``(run, outcome)`` pairs.  Chunk
        results are consumed as they complete so the ``progress``
        callback reports during parallel runs too; worker telemetry
        (metrics registries, event shards) is merged at the end.

        Predicted experiments are recorded into the parent's registry and
        written to a pseudo-shard (index ``workers``, which no worker
        uses) so the shard merge interleaves their events back into plan
        order alongside the workers' simulated ones.
        """
        import concurrent.futures

        predicted_results = predicted_results or {}
        slices = [live_plan[i::workers] for i in range(workers)]
        metrics_enabled = telemetry is not None and telemetry.metrics is not None
        args = []
        for worker_index, chunk in enumerate(slices):
            if not chunk:
                continue
            shard = telemetry.shard_path(worker_index) if telemetry else None
            args.append(
                (
                    self.config.workload,
                    self.config.iterations,
                    self.config.watchdog_factor,
                    self.config.early_exit,
                    self.config.environment_factory,
                    chunk,
                    worker_index,
                    shard,
                    metrics_enabled,
                )
            )
        by_index = dict(predicted_results)
        # ``(worker index, path)`` pairs; ordered numerically before the
        # merge.  Sorting the bare paths would be lexicographic —
        # ``shard10`` before ``shard2`` — as soon as workers reach 10.
        shards: List[Tuple[int, str]] = []
        done = 0
        if predicted_results and telemetry is not None:
            if telemetry.metrics is not None:
                for run, outcome in predicted_results.values():
                    record_outcome(telemetry.metrics, run, outcome)
            predicted_shard = telemetry.shard_path(workers)
            if predicted_shard is not None:
                with EventLog(predicted_shard) as shard_log:
                    for index in sorted(predicted_results):
                        run, outcome = predicted_results[index]
                        shard_log.emit(
                            "experiment_finished",
                            **experiment_event(index, run, outcome),
                        )
                shards.append((workers, predicted_shard))
        for index in sorted(predicted_results):
            done += 1
            if progress is not None:
                progress(done, total, predicted_results[index][1])
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_chunk, a) for a in args]
            for future in concurrent.futures.as_completed(futures):
                worker_index, chunk_result, registry_dict, seconds = future.result()
                for index, run, outcome in chunk_result:
                    by_index[index] = (run, outcome)
                    done += 1
                    if progress is not None:
                        progress(done, total, outcome)
                if telemetry is not None:
                    if registry_dict is not None:
                        telemetry.metrics.merge(
                            MetricsRegistry.from_dict(registry_dict)
                        )
                    shard = telemetry.shard_path(worker_index)
                    if shard is not None:
                        shards.append((worker_index, shard))
                    telemetry.emit(
                        "worker_chunk_done",
                        ts=time.time(),
                        worker=worker_index,
                        experiments=len(chunk_result),
                        seconds=seconds,
                    )
        if telemetry is not None and telemetry.events is not None and shards:
            merge_event_shards(
                telemetry.events, [path for _index, path in sorted(shards)]
            )
        experiments = []
        outcomes = []
        for index in range(total):
            run, outcome = by_index[index]
            experiments.append(run)
            outcomes.append(outcome)
        return experiments, outcomes

    @staticmethod
    def _classify(run: ExperimentRun, reference_outputs: List[float]) -> Outcome:
        detected_by = (
            run.detection.mechanism.value if run.detection is not None else None
        )
        return classify_experiment(
            observed=run.outputs,
            reference=reference_outputs,
            detected_by=detected_by,
            final_state_differs=run.final_state_differs,
        )
