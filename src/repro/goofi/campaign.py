"""Campaign orchestration: configuration, set-up, injection, analysis.

:class:`ScifiCampaign` drives a full scan-chain fault-injection campaign
against the simulated CPU, following the paper's §3.3 flow and producing
a Tables 2/3-ready :class:`~repro.analysis.report.CampaignSummary`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.classify import Outcome, classify_experiment
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import CampaignError
from repro.faults.models import FaultDescriptor, LocationSpace, sample_fault_plan
from repro.goofi.database import CampaignDatabase
from repro.goofi.environment import EngineEnvironment
from repro.goofi.pool import ReferencePool, WorkerPayload, worker_target
from repro.goofi.pruning import preclassify_plan, synthesize_run
from repro.goofi.target import ExperimentRun, TargetSystem
from repro.obs.events import EventLog, merge_event_shards
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    Telemetry,
    campaign_finished_event,
    campaign_started_event,
    experiment_event,
    record_outcome,
)
from repro.plant.profiles import ITERATIONS
from repro.tcc.codegen import CompiledProgram


@dataclass
class CampaignConfig:
    """Set-up phase parameters (§3.3.2).

    Attributes:
        workload: the compiled workload to inject into.
        name: campaign label used in summaries and the database.
        faults: number of fault-injection experiments.
        seed: RNG seed for the uniform location/time sampling.
        iterations: loop iterations per experiment (paper: 650).
        partitions: restrict injection to these scan-chain partitions
            (default: all — ``cache`` and ``registers``).
        watchdog_factor: experiment watchdog as a multiple of the longest
            fault-free iteration.
        early_exit: enable the provably-safe early termination when the
            faulted state re-converges to the reference.
        prune: record the reference run's def/use access trace and skip
            simulating faults whose outcome it proves (overwritten before
            the next read, or never touched again) — the predicted
            experiments classify identically to simulated ones, see
            ``docs/performance.md``.  Off by default.
        share_reference: ship the parent's golden run to the workers
            instead of having every worker recompute it (parallel runs
            only; outcomes are identical either way).
        fast_dispatch: use the predecoded dispatch-table interpreter;
            ``False`` pins the legacy decode/execute chain.
        incremental_hash: compute boundary digests incrementally from
            cached clean-image prefixes; ``False`` rebuilds every digest
            from scratch.  All three flags exist for the
            golden-equivalence test and benchmark baselines.
        environment_factory: builds the environment simulator.
    """

    workload: CompiledProgram
    name: str = "campaign"
    faults: int = 500
    seed: int = 2001
    iterations: int = ITERATIONS
    partitions: Optional[List[str]] = None
    watchdog_factor: float = 10.0
    early_exit: bool = True
    prune: bool = False
    share_reference: bool = True
    fast_dispatch: bool = True
    incremental_hash: bool = True
    environment_factory: Callable[[], EngineEnvironment] = EngineEnvironment

    def __post_init__(self) -> None:
        if self.faults <= 0:
            raise CampaignError("faults must be positive")
        if self.iterations <= 0:
            raise CampaignError("iterations must be positive")


@dataclass
class CampaignResult:
    """All experiments of one campaign, classified.

    Attributes:
        config: the campaign configuration.
        experiments: raw per-experiment observations.
        outcomes: §4.1 classification per experiment (same order).
        reference_outputs: the golden output sequence.
        partition_sizes: injectable bits per partition.
        wall_seconds: total injection-phase wall time.
    """

    config: CampaignConfig
    experiments: List[ExperimentRun]
    outcomes: List[Outcome]
    reference_outputs: List[float]
    partition_sizes: dict
    wall_seconds: float = 0.0

    def summary(self) -> CampaignSummary:
        """Aggregate into a Tables 2/3-ready summary."""
        records = [
            ClassifiedExperiment(partition=run.fault.target.partition, outcome=outcome)
            for run, outcome in zip(self.experiments, self.outcomes)
        ]
        return CampaignSummary(
            records=records,
            partition_sizes=self.partition_sizes,
            name=self.config.name,
        )


def _null_span(_name: str):
    """The zero-overhead stand-in for a tracer span."""
    return nullcontext()


def _run_chunk(args):
    """Worker entry point: run one slice of a fault plan.

    Top-level (picklable) by necessity; runs against the process-wide
    target system built by the pool initializer — with a shared
    reference the golden run was computed once in the parent and
    shipped, otherwise the initializer recomputed it, but either way no
    per-chunk reference run happens here.  ``chunk`` carries
    ``(plan index, fault)`` pairs so telemetry can be re-ordered into
    plan order afterwards.

    When telemetry is enabled the worker records into its own
    :class:`~repro.obs.MetricsRegistry` (returned as a dict for the
    parent to merge) and writes ``experiment_finished`` events to its
    own shard file — worker processes never share a file descriptor.

    Returns ``(worker_index, results, registry_dict, seconds)`` where
    ``results`` holds ``(plan index, run, outcome)`` triples.
    """
    chunk, worker_index, shard_path, metrics_enabled, early_exit = args
    registry = MetricsRegistry() if metrics_enabled else None
    events = EventLog(shard_path) if shard_path else None
    target = worker_target()
    started = time.perf_counter()
    results = []
    # The worker process outlives this chunk; reset the metrics binding
    # afterwards so its EDM listener never leaks into the next phase.
    target.metrics = registry
    try:
        reference_outputs = target.reference.outputs
        for index, fault in chunk:
            run = target.run_experiment(fault, early_exit=early_exit)
            outcome = ScifiCampaign._classify(run, reference_outputs)
            if registry is not None:
                record_outcome(registry, run, outcome)
            if events is not None:
                events.emit(
                    "experiment_finished", **experiment_event(index, run, outcome)
                )
            results.append((index, run, outcome))
    finally:
        target.metrics = None
    if events is not None:
        events.close()
    seconds = time.perf_counter() - started
    return (
        worker_index,
        results,
        registry.to_dict() if registry is not None else None,
        seconds,
    )


class ScifiCampaign:
    """A scan-chain implemented fault-injection campaign (§3.3.1 SCIFI)."""

    def __init__(
        self,
        config: CampaignConfig,
        database: Optional[CampaignDatabase] = None,
    ):
        self.config = config
        self.database = database
        self.target = TargetSystem(
            workload=config.workload,
            environment=config.environment_factory(),
            iterations=config.iterations,
            watchdog_factor=config.watchdog_factor,
            fast_dispatch=config.fast_dispatch,
            incremental_hash=config.incremental_hash,
        )

    def location_space(self) -> LocationSpace:
        """The injectable locations after partition restriction."""
        space = self.target.scan_chain.location_space()
        if self.config.partitions:
            targets = [t for t in space if t.partition in self.config.partitions]
            if not targets:
                raise CampaignError(
                    f"no targets in partitions {self.config.partitions!r}"
                )
            space = LocationSpace(targets)
        return space

    def run(
        self,
        progress: Optional[Callable[[int, int, Outcome], None]] = None,
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        pool: Optional[ReferencePool] = None,
    ) -> CampaignResult:
        """Execute the campaign: reference run, sampling, injection, analysis.

        Args:
            progress: optional callback ``(done, total, outcome)`` invoked
                after each experiment.  With ``workers > 1`` it fires as
                chunk results arrive, so ``done`` still counts every
                experiment but outcomes report in completion order.
            workers: number of worker processes.  ``1`` (default) runs
                serially in this process; ``N > 1`` deals the fault plan
                into N *strided* slices (``plan[i::N]``) executed in
                parallel.  Striding (rather than contiguous blocks)
                balances load even when plan order correlates with
                experiment cost — e.g. a time-sorted plan, where early
                injections simulate the longest suffix of the run and a
                contiguous split would hand one worker all of them.
                Results are bit-identical to the serial run (every
                experiment is independent and fully determined by its
                fault), just reordered back into plan order.
            telemetry: optional :class:`~repro.obs.Telemetry` bundle.
                When given, the run records phase spans, per-experiment
                metrics and JSONL events; per-worker registries/shards
                are merged so serial and parallel runs report identical
                aggregate telemetry.  ``None`` (default) is a no-op.
            pool: optional :class:`~repro.goofi.pool.ReferencePool` to
                run the parallel phase on.  The pool's warm workers are
                reused (and left running for the caller's next phase);
                without one the parallel path spins up and tears down
                its own.  Implies the pool's worker count.
        """
        config = self.config
        if pool is not None:
            workers = pool.workers
        span = telemetry.span if telemetry is not None else _null_span
        if telemetry is not None:
            telemetry.emit(
                "campaign_started", **campaign_started_event(config, workers)
            )
            if telemetry.metrics is not None and workers <= 1:
                self.target.metrics = telemetry.metrics

        try:
            result = self._run_phases(
                progress, workers, telemetry, span, pool
            )
        finally:
            # The metrics binding registers a global EDM listener;
            # unhook it so a later campaign (or pool phase) in the same
            # process never double-counts detections.
            self.target.metrics = None
        return result

    def _run_phases(
        self,
        progress,
        workers: int,
        telemetry: Optional[Telemetry],
        span,
        pool: Optional[ReferencePool],
    ) -> CampaignResult:
        config = self.config
        with span("campaign"):
            with span("reference_run"):
                reference = self.target.run_reference(
                    record_access=config.prune
                )
                if telemetry is not None and telemetry.metrics is not None:
                    telemetry.metrics.gauge("reference_instructions").set(
                        reference.total_instructions
                    )
            with span("set_up"):
                space = self.location_space()
                rng = np.random.default_rng(config.seed)
                plan = sample_fault_plan(
                    space=space,
                    total_instructions=reference.total_instructions,
                    count=config.faults,
                    rng=rng,
                )
                partition_sizes = {
                    partition: space.partition_size(partition)
                    for partition in space.partitions
                }

            # Pre-classify against the def/use liveness map: predicted
            # experiments are synthesised from the reference and never
            # enter the injection loop below.
            predicted_results: Dict[int, Tuple[ExperimentRun, Outcome]] = {}
            live_plan: List[Tuple[int, FaultDescriptor]] = list(enumerate(plan))
            if config.prune:
                with span("pruning"):
                    liveness = self.target.liveness
                    if liveness is None:
                        raise CampaignError(
                            "pruning requested but no liveness map recorded"
                        )
                    pruned = preclassify_plan(plan, liveness)
                    live_plan = pruned.live
                    for index, fault, classification in pruned.predicted:
                        run = synthesize_run(fault, classification, reference)
                        predicted_results[index] = (
                            run,
                            self._classify(run, reference.outputs),
                        )
                    if telemetry is not None and telemetry.metrics is not None:
                        for _i, _f, classification in pruned.predicted:
                            telemetry.metrics.counter(
                                "pruned_experiments",
                                prediction=classification.value,
                            ).inc()
            if telemetry is not None and telemetry.metrics is not None:
                telemetry.metrics.counter("simulated_experiments").inc(
                    len(live_plan)
                )

            started = time.perf_counter()
            with span("injection"):
                if workers <= 1:
                    by_index: Dict[int, Tuple[ExperimentRun, Outcome]] = dict(
                        predicted_results
                    )
                    for i, fault in enumerate(plan):
                        pair = by_index.get(i)
                        if pair is None:
                            run = self.target.run_experiment(
                                fault, early_exit=config.early_exit
                            )
                            outcome = self._classify(run, reference.outputs)
                            by_index[i] = (run, outcome)
                        else:
                            run, outcome = pair
                        if telemetry is not None:
                            if telemetry.metrics is not None:
                                record_outcome(telemetry.metrics, run, outcome)
                            telemetry.emit(
                                "experiment_finished",
                                **experiment_event(i, run, outcome),
                            )
                        if progress is not None:
                            progress(i + 1, len(plan), outcome)
                    experiments = [by_index[i][0] for i in range(len(plan))]
                    outcomes = [by_index[i][1] for i in range(len(plan))]
                else:
                    experiments, outcomes = self._run_parallel(
                        live_plan,
                        len(plan),
                        workers,
                        progress=progress,
                        telemetry=telemetry,
                        predicted_results=predicted_results,
                        pool=pool,
                    )
            wall = time.perf_counter() - started

            with span("analysis"):
                result = CampaignResult(
                    config=config,
                    experiments=experiments,
                    outcomes=outcomes,
                    reference_outputs=list(reference.outputs),
                    partition_sizes=partition_sizes,
                    wall_seconds=wall,
                )
                if self.database is not None:
                    self.database.store_campaign(result)

        if telemetry is not None:
            telemetry.emit(
                "campaign_finished", **campaign_finished_event(outcomes, wall)
            )
            telemetry.finish()
        return result

    def _run_parallel(
        self,
        live_plan,
        total,
        workers,
        progress=None,
        telemetry=None,
        predicted_results=None,
        pool=None,
    ):
        """Fan the live plan out over worker processes, preserving plan order.

        ``live_plan`` holds ``(plan index, fault)`` pairs that need
        simulation; ``predicted_results`` maps the remaining plan indices
        to their pruning-synthesised ``(run, outcome)`` pairs.  Chunk
        results are consumed as they complete so the ``progress``
        callback reports during parallel runs too; worker telemetry
        (metrics registries, event shards) is merged at the end.

        Workers come from a :class:`~repro.goofi.pool.ReferencePool`
        initialised with the parent's golden run (unless
        ``share_reference`` is off, in which case each worker recomputes
        it — the legacy baseline).  A caller-supplied pool is reused and
        left running; an internally created one is torn down here.

        Predicted experiments are recorded into the parent's registry and
        written to a pseudo-shard (index ``workers``, which no worker
        uses) so the shard merge interleaves their events back into plan
        order alongside the workers' simulated ones.
        """
        import concurrent.futures

        predicted_results = predicted_results or {}
        slices = [live_plan[i::workers] for i in range(workers)]
        metrics_enabled = telemetry is not None and telemetry.metrics is not None
        args = []
        for worker_index, chunk in enumerate(slices):
            if not chunk:
                continue
            shard = telemetry.shard_path(worker_index) if telemetry else None
            args.append(
                (chunk, worker_index, shard, metrics_enabled, self.config.early_exit)
            )
        payload = WorkerPayload(
            workload=self.config.workload,
            iterations=self.config.iterations,
            watchdog_factor=self.config.watchdog_factor,
            environment_factory=self.config.environment_factory,
            reference=(
                self.target.reference if self.config.share_reference else None
            ),
            fast_dispatch=self.config.fast_dispatch,
            incremental_hash=self.config.incremental_hash,
        )
        own_pool = pool is None
        if pool is None:
            pool = ReferencePool(workers)
        by_index = dict(predicted_results)
        # ``(worker index, path)`` pairs; ordered numerically before the
        # merge.  Sorting the bare paths would be lexicographic —
        # ``shard10`` before ``shard2`` — as soon as workers reach 10.
        shards: List[Tuple[int, str]] = []
        done = 0
        if predicted_results and telemetry is not None:
            if telemetry.metrics is not None:
                for run, outcome in predicted_results.values():
                    record_outcome(telemetry.metrics, run, outcome)
            predicted_shard = telemetry.shard_path(workers)
            if predicted_shard is not None:
                with EventLog(predicted_shard) as shard_log:
                    for index in sorted(predicted_results):
                        run, outcome = predicted_results[index]
                        shard_log.emit(
                            "experiment_finished",
                            **experiment_event(index, run, outcome),
                        )
                shards.append((workers, predicted_shard))
        for index in sorted(predicted_results):
            done += 1
            if progress is not None:
                progress(done, total, predicted_results[index][1])
        try:
            pool.prepare(payload)
            futures = [pool.submit(_run_chunk, a) for a in args]
            for future in concurrent.futures.as_completed(futures):
                worker_index, chunk_result, registry_dict, seconds = future.result()
                for index, run, outcome in chunk_result:
                    by_index[index] = (run, outcome)
                    done += 1
                    if progress is not None:
                        progress(done, total, outcome)
                if telemetry is not None:
                    if registry_dict is not None:
                        telemetry.metrics.merge(
                            MetricsRegistry.from_dict(registry_dict)
                        )
                    shard = telemetry.shard_path(worker_index)
                    if shard is not None:
                        shards.append((worker_index, shard))
                    telemetry.emit(
                        "worker_chunk_done",
                        ts=time.time(),
                        worker=worker_index,
                        experiments=len(chunk_result),
                        seconds=seconds,
                    )
        finally:
            if own_pool:
                pool.close()
        if telemetry is not None and telemetry.events is not None and shards:
            merge_event_shards(
                telemetry.events, [path for _index, path in sorted(shards)]
            )
        experiments = []
        outcomes = []
        for index in range(total):
            run, outcome = by_index[index]
            experiments.append(run)
            outcomes.append(outcome)
        return experiments, outcomes

    @staticmethod
    def _classify(run: ExperimentRun, reference_outputs: List[float]) -> Outcome:
        detected_by = (
            run.detection.mechanism.value if run.detection is not None else None
        )
        return classify_experiment(
            observed=run.outputs,
            reference=reference_outputs,
            detected_by=detected_by,
            final_state_differs=run.final_state_differs,
        )
