"""The environment simulator: the engine model driven from the host.

In the paper, the Simulink-generated engine model runs on the UNIX
workstation and exchanges data with the target each loop iteration
(§3.3.2).  :class:`EngineEnvironment` plays that role: it writes the
reference speed ``r(k)`` and measured speed ``y(k)`` into the target's
MMIO registers, reads back the commanded throttle ``u_lim(k)`` at each
yield, and advances the engine one sample.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.plant.engine import EngineModel
from repro.plant.profiles import (
    LoadProfile,
    ReferenceProfile,
    paper_load_profile,
    paper_reference_profile,
)
from repro.thor.memory import MMIODevice


def _f32_bits(value: float) -> int:
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        inf = float("inf") if value > 0 else float("-inf")
        return struct.unpack("<I", struct.pack("<f", inf))[0]


def _bits_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


class EngineEnvironment:
    """Host-side engine simulation exchanging data over MMIO.

    The exchange protocol per control iteration ``k``:

    1. before the iteration starts, ``r(k)`` and ``y(k)`` are present in
       the MMIO input registers;
    2. the target computes and stores ``u_lim(k)`` in the MMIO output
       register, then yields (``SVC 0``);
    3. :meth:`exchange` reads ``u_lim(k)``, steps the engine under the
       load profile, and writes ``r(k+1)``, ``y(k+1)``.
    """

    def __init__(
        self,
        engine: Optional[EngineModel] = None,
        reference: Optional[ReferenceProfile] = None,
        load: Optional[LoadProfile] = None,
        warm_start: bool = True,
    ):
        self.engine = engine if engine is not None else EngineModel()
        self.reference = reference if reference is not None else paper_reference_profile()
        self.load = load if load is not None else paper_load_profile()
        self.warm_start = warm_start
        self.iteration = 0

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Reset the engine to the run's initial state and iteration 0."""
        initial_reference = self.reference.value(0.0)
        if self.warm_start:
            self.engine.reset(speed=initial_reference, load=self.load.base)
        else:
            self.engine.reset()
        self.iteration = 0

    def initial_throttle(self) -> float:
        """Steady-state throttle matching the warm-started engine."""
        return self.engine.params.steady_state_throttle(
            self.reference.value(0.0), self.load.base
        )

    def write_inputs(self, mmio: MMIODevice) -> None:
        """Write r(k) and y(k) for the current iteration into MMIO."""
        t = self.iteration * self.engine.params.sample_time
        mmio.write(MMIODevice.REFERENCE, _f32_bits(self.reference.value(t)))
        mmio.write(MMIODevice.SPEED, _f32_bits(self.engine.speed))

    def exchange(self, mmio: MMIODevice) -> float:
        """Complete iteration ``k``: read the output, step, write inputs.

        Returns the throttle command the target delivered.
        """
        throttle = _bits_f32(mmio.read(MMIODevice.THROTTLE))
        t = self.iteration * self.engine.params.sample_time
        self.engine.step(throttle, self.load.value(t))
        self.iteration += 1
        self.write_inputs(mmio)
        return throttle

    def hold_output_step(self, throttle: float) -> None:
        """Advance the engine one sample with a held actuator command.

        Used when the target stopped delivering outputs (watchdog): a
        real actuator holds its last command.
        """
        t = self.iteration * self.engine.params.sample_time
        self.engine.step(throttle, self.load.value(t))
        self.iteration += 1

    # -- state access -----------------------------------------------------------
    def state_bytes(self) -> bytes:
        """Engine state + iteration index, for run-state hashing."""
        return (
            struct.pack("<dd", self.engine.airflow, self.engine.speed)
            + self.iteration.to_bytes(4, "little")
        )

    def snapshot(self) -> Dict[str, object]:
        """A restorable copy of the environment state."""
        return {
            "engine": list(self.engine.state_vector()),
            "iteration": self.iteration,
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.engine.set_state_vector(list(snapshot["engine"]))  # type: ignore[arg-type]
        self.iteration = snapshot["iteration"]  # type: ignore[assignment]

    def fault_free_outputs(self, iterations: int) -> List[float]:
        """Model-level fault-free throttle sequence (diagnostics only)."""
        from repro.control.pi import PIController
        from repro.plant.loop import ClosedLoop

        loop = ClosedLoop(
            PIController(),
            engine=EngineModel(self.engine.params),
            reference=self.reference,
            load=self.load,
        )
        return list(loop.run(iterations).throttle)
