"""The delta data plane: dirty-tracked checkpoints and O(touched) restores.

The classic data plane stores one *full* restorable snapshot per
iteration boundary (651 of them for the default workload) and restores
the complete machine before every experiment.  Both costs are
proportional to total state size, while the state that actually changes
per control iteration — and the state an experiment actually corrupts —
is a few dozen words.  This module replaces both O(state) operations
with O(touched) ones:

* :class:`DeltaRecorder` / :class:`CheckpointStore` — the reference run
  keeps one base snapshot plus a per-iteration *delta* (changed
  registers, cache lines, RAM words, the tiny MMIO/environment state).
  ``snapshots[k]`` still materialises a legacy full snapshot — by
  replaying deltas forward from the nearest materialised checkpoint,
  with permanent anchors every :data:`ANCHOR_EVERY` boundaries and a
  small LRU of recently materialised states — so every existing
  consumer keeps working, but the stored (and pickled-to-workers)
  payload shrinks by orders of magnitude.

* :class:`MachineCursor` — per-experiment restore via an undo log.
  While a faulty execution runs, every first mutation of a RAM word is
  recorded by the armed :attr:`repro.thor.memory._Ram.undo` log; the
  next experiment rewinds by writing back only the touched words, then
  reaches its target boundary by replaying forward deltas.  Registers,
  cache lines, MMIO and environment state are small enough to re-seat
  wholesale from a saved copy.  Any code path the cursor cannot see — a
  wholesale :meth:`_Ram.restore` disarms the log — poisons the cursor,
  which falls back to a legacy full restore and re-arms.

* :class:`SplicedOutputs` — experiment output sequences that *share*
  the reference prefix (and the early-exit suffix) instead of copying
  them, so per-experiment output memory is O(simulated iterations).

Golden equivalence is the design rule throughout: a campaign run
through this data plane produces bit-identical outcomes, hashes and
summary tables to the full-copy path (``delta_dataplane=False``).
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from itertools import chain, islice
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.thor.memory import _parity

#: A permanent materialised checkpoint is kept every this-many
#: boundaries, bounding any materialisation to < ANCHOR_EVERY delta
#: replays while adding ~1.5% of the classic snapshot-list memory.
ANCHOR_EVERY = 64

#: Recently materialised non-anchor boundaries kept for reuse
#: (locality-sorted schedules revisit adjacent boundaries).
LRU_SIZE = 4

#: A cursor walks at most this many deltas forward from its rewound
#: boundary; farther targets use a full restore (comparable cost, and
#: it re-anchors the checkpoint store along the way).
FORWARD_REPLAY_LIMIT = 64

_RAM_REGIONS = ("code", "rodata", "data", "stack")

#: Delta tuple layout: ``(regs, scalars, cache, ram, mmio, env)`` where
#: ``regs``/``cache``/``ram`` hold only *changed* entries and
#: ``scalars``/``mmio``/``env`` are complete (they are a handful of
#: words each, and storing them whole makes applying a delta
#: order-independent of the previous scalar state).
Delta = Tuple[tuple, tuple, tuple, tuple, tuple, tuple]


# -- wire format ---------------------------------------------------------------
# Deltas are kept structured in memory (tuples apply fast), but pickle
# as a zlib-compressed binary stream: a delta is ~a hundred small
# integers, which pickled as Python objects cost ~5 bytes each, while
# the fixed-width encoding below plus compression shrinks the shipped
# reference payload by another ~7x.  The round trip is exact — every
# field is a bounded integer or an IEEE double.
_SCALARS_STRUCT = struct.Struct("<IIIIIqQB")
_REG_CHANGE = struct.Struct("<BI")
_CACHE_CHANGE = struct.Struct("<BIIBB")
_RAM_HEADER = struct.Struct("<BH")
_RAM_CHANGE = struct.Struct("<HI")
_MMIO_CHANGE = struct.Struct("<II")
_ENV_HEADER = struct.Struct("<BI")


def _encode_deltas(deltas: List["Delta"]) -> bytes:
    out = bytearray()
    for regs_delta, scalars, cache_delta, ram_delta, mmio, env in deltas:
        out.append(len(regs_delta))
        for i, v in regs_delta:
            out += _REG_CHANGE.pack(i, v)
        pc, psw, ir, mar, mdr, signature, index, halted = scalars
        out += _SCALARS_STRUCT.pack(
            pc,
            psw,
            ir,
            mar,
            mdr,
            -1 if signature is None else signature,
            index,
            1 if halted else 0,
        )
        out.append(len(cache_delta))
        for entry in cache_delta:
            out += _CACHE_CHANGE.pack(*entry)
        out.append(len(ram_delta))
        for name, changes in ram_delta:
            out += _RAM_HEADER.pack(_RAM_REGIONS.index(name), len(changes))
            for change in changes:
                out += _RAM_CHANGE.pack(*change)
        out.append(len(mmio))
        for pair in mmio:
            out += _MMIO_CHANGE.pack(*pair)
        engine, iteration = env
        out += _ENV_HEADER.pack(len(engine), iteration)
        out += struct.pack(f"<{len(engine)}d", *engine)
    return zlib.compress(bytes(out), 6)


def _decode_deltas(blob: bytes) -> List["Delta"]:
    raw = zlib.decompress(blob)
    deltas: List[Delta] = []
    pos = 0
    size = len(raw)
    while pos < size:
        count = raw[pos]
        pos += 1
        regs_delta = tuple(
            _REG_CHANGE.unpack_from(raw, pos + i * _REG_CHANGE.size)
            for i in range(count)
        )
        pos += count * _REG_CHANGE.size
        pc, psw, ir, mar, mdr, signature, index, halted = (
            _SCALARS_STRUCT.unpack_from(raw, pos)
        )
        pos += _SCALARS_STRUCT.size
        scalars = (
            pc,
            psw,
            ir,
            mar,
            mdr,
            None if signature == -1 else signature,
            index,
            bool(halted),
        )
        count = raw[pos]
        pos += 1
        cache_delta = tuple(
            _CACHE_CHANGE.unpack_from(raw, pos + i * _CACHE_CHANGE.size)
            for i in range(count)
        )
        pos += count * _CACHE_CHANGE.size
        regions = raw[pos]
        pos += 1
        ram_delta = []
        for _ in range(regions):
            name_index, changed = _RAM_HEADER.unpack_from(raw, pos)
            pos += _RAM_HEADER.size
            changes = tuple(
                _RAM_CHANGE.unpack_from(raw, pos + i * _RAM_CHANGE.size)
                for i in range(changed)
            )
            pos += changed * _RAM_CHANGE.size
            ram_delta.append((_RAM_REGIONS[name_index], changes))
        count = raw[pos]
        pos += 1
        mmio = tuple(
            _MMIO_CHANGE.unpack_from(raw, pos + i * _MMIO_CHANGE.size)
            for i in range(count)
        )
        pos += count * _MMIO_CHANGE.size
        floats, iteration = _ENV_HEADER.unpack_from(raw, pos)
        pos += _ENV_HEADER.size
        engine = struct.unpack_from(f"<{floats}d", raw, pos)
        pos += floats * 8
        deltas.append(
            (regs_delta, scalars, cache_delta, tuple(ram_delta), mmio, (engine, iteration))
        )
    return deltas


def _cpu_scalars(cpu) -> tuple:
    return (
        cpu.pc,
        cpu.psw,
        cpu.ir,
        cpu.mar,
        cpu.mdr,
        cpu.last_signature,
        cpu.instruction_index,
        cpu.halted,
    )


class DeltaRecorder:
    """Builds a :class:`CheckpointStore` during the reference run.

    Construct at the first boundary (after load/warm-start), call
    :meth:`record` after every iteration, then :meth:`finish`.  The diff
    is computed against a retained copy of the previous boundary; RAM
    regions short-circuit on their mutation version, so the
    write-protected code/rodata images are never rescanned.
    """

    def __init__(self, cpu, environment):
        self._cpu = cpu
        self._env = environment
        self.base: Dict[str, object] = {
            "cpu": cpu.snapshot(),
            "env": environment.snapshot(),
        }
        self.deltas: List[Delta] = []
        cache = cpu.cache
        memory = cpu.memory
        self._prev_regs = list(cpu.regs)
        self._prev_cache = (
            list(cache.data),
            list(cache.tags),
            list(cache.valid),
            list(cache.dirty),
        )
        self._prev_ram = {
            name: (getattr(memory, name).version, list(getattr(memory, name).words))
            for name in _RAM_REGIONS
        }

    def record(self) -> None:
        """Append the delta from the previous boundary to the current one."""
        cpu = self._cpu
        memory = cpu.memory
        cache = cpu.cache

        prev_regs = self._prev_regs
        regs = cpu.regs
        regs_delta = tuple(
            (i, v) for i, v in enumerate(regs) if v != prev_regs[i]
        )
        if regs_delta:
            self._prev_regs = list(regs)

        prev_data, prev_tags, prev_valid, prev_dirty = self._prev_cache
        data, tags, valid, dirty = cache.data, cache.tags, cache.valid, cache.dirty
        cache_delta = tuple(
            (i, data[i], tags[i], valid[i], dirty[i])
            for i in range(len(data))
            if (
                data[i] != prev_data[i]
                or tags[i] != prev_tags[i]
                or valid[i] != prev_valid[i]
                or dirty[i] != prev_dirty[i]
            )
        )
        if cache_delta:
            self._prev_cache = (list(data), list(tags), list(valid), list(dirty))

        ram_delta = []
        for name in _RAM_REGIONS:
            ram = getattr(memory, name)
            version, prev_words = self._prev_ram[name]
            if ram.version == version:
                continue
            words = ram.words
            changed = tuple(
                (i, w) for i, w in enumerate(words) if w != prev_words[i]
            )
            if changed:
                ram_delta.append((name, changed))
            self._prev_ram[name] = (ram.version, list(words))

        self.deltas.append(
            (
                regs_delta,
                _cpu_scalars(cpu),
                cache_delta,
                tuple(ram_delta),
                tuple(sorted(memory.mmio.registers.items())),
                (tuple(self._env.engine.state_vector()), self._env.iteration),
            )
        )

    def finish(self) -> "CheckpointStore":
        return CheckpointStore(self.base, self.deltas)


class CheckpointStore:
    """Base snapshot + per-boundary deltas, presenting the legacy
    ``snapshots[k]`` interface.

    ``store[k]`` (and :meth:`snapshot_at`) materialise the full legacy
    snapshot dict for boundary ``k``.  Materialisation replays deltas
    forward from the nearest already-materialised boundary; permanent
    anchors every :data:`ANCHOR_EVERY` boundaries plus a small LRU keep
    that replay short for arbitrary access patterns, and *O(1)* for the
    sorted ones locality-aware scheduling produces.  Untouched RAM
    regions (code/rodata in practice) share the base's immutable packed
    bytes, so materialised snapshots stay cheap.

    Only ``base`` and ``deltas`` are pickled; anchors and the LRU are
    transient and rebuilt lazily in the receiving process.
    """

    def __init__(self, base: Dict[str, object], deltas: List[Delta]):
        self.base = base
        self.deltas = deltas
        self._init_transients()

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        return {"base": self.base, "blob": _encode_deltas(self.deltas)}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.base = state["base"]
        self.deltas = _decode_deltas(state["blob"])  # type: ignore[arg-type]
        self._init_transients()

    def _init_transients(self) -> None:
        base_memory: Dict[str, object] = self.base["cpu"]["memory"]  # type: ignore[index]
        self._structs = {
            name: struct.Struct(f"<{len(base_memory[name][0]) // 4}I")
            for name in _RAM_REGIONS
        }
        self._anchors: Dict[int, Dict[str, object]] = {0: self._work_from_base()}
        self._lru: "OrderedDict[int, Dict[str, object]]" = OrderedDict()

    # -- container protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.deltas) + 1

    def __getitem__(self, boundary: int) -> Dict[str, object]:
        return self.snapshot_at(boundary)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return (self.snapshot_at(k) for k in range(len(self)))

    # -- working-state machinery -------------------------------------------------
    # A "working state" is the mutable intermediate representation a
    # delta can be applied to without unpacking untouched RAM regions:
    # regions absent from ``ram`` are still bit-identical to the base.
    def _work_from_base(self) -> Dict[str, object]:
        cpu: Dict[str, object] = self.base["cpu"]  # type: ignore[assignment]
        cache: Dict[str, List[int]] = cpu["cache"]  # type: ignore[assignment]
        env: Dict[str, object] = self.base["env"]  # type: ignore[assignment]
        return {
            "regs": list(cpu["regs"]),  # type: ignore[call-overload]
            "scalars": (
                cpu["pc"],
                cpu["psw"],
                cpu["ir"],
                cpu["mar"],
                cpu["mdr"],
                cpu["last_signature"],
                cpu["instruction_index"],
                cpu["halted"],
            ),
            "cache": (
                list(cache["data"]),
                list(cache["tags"]),
                list(cache["valid"]),
                list(cache["dirty"]),
            ),
            "ram": {},
            "mmio": dict(cpu["memory"]["mmio"]),  # type: ignore[index]
            "env": (tuple(env["engine"]), env["iteration"]),  # type: ignore[arg-type]
        }

    @staticmethod
    def _copy_work(work: Dict[str, object]) -> Dict[str, object]:
        return {
            "regs": list(work["regs"]),  # type: ignore[call-overload]
            "scalars": work["scalars"],
            "cache": tuple(list(arr) for arr in work["cache"]),  # type: ignore[union-attr]
            "ram": {name: list(words) for name, words in work["ram"].items()},  # type: ignore[union-attr]
            "mmio": dict(work["mmio"]),  # type: ignore[arg-type]
            "env": work["env"],
        }

    def _apply(self, work: Dict[str, object], delta: Delta) -> None:
        regs_delta, scalars, cache_delta, ram_delta, mmio, env = delta
        regs: List[int] = work["regs"]  # type: ignore[assignment]
        for i, v in regs_delta:
            regs[i] = v
        work["scalars"] = scalars
        data, tags, valid, dirty = work["cache"]  # type: ignore[misc]
        for i, d, t, vl, dy in cache_delta:
            data[i] = d
            tags[i] = t
            valid[i] = vl
            dirty[i] = dy
        ram: Dict[str, List[int]] = work["ram"]  # type: ignore[assignment]
        base_memory: Dict[str, object] = self.base["cpu"]["memory"]  # type: ignore[index]
        for name, changes in ram_delta:
            words = ram.get(name)
            if words is None:
                words = list(self._structs[name].unpack(base_memory[name][0]))  # type: ignore[index]
                ram[name] = words
            for i, w in changes:
                words[i] = w
        work["mmio"] = dict(mmio)
        work["env"] = env

    def _materialize(self, boundary: int) -> Dict[str, object]:
        anchors = self._anchors
        cached = anchors.get(boundary)
        if cached is not None:
            return cached
        lru = self._lru
        cached = lru.get(boundary)
        if cached is not None:
            lru.move_to_end(boundary)
            return cached
        nearest = max(k for k in chain(anchors, lru) if k <= boundary)
        work = self._copy_work(
            anchors[nearest] if nearest in anchors else lru[nearest]
        )
        deltas = self.deltas
        for t in range(nearest, boundary):
            self._apply(work, deltas[t])
            passed = t + 1
            if (
                passed != boundary
                and passed % ANCHOR_EVERY == 0
                and passed not in anchors
            ):
                anchors[passed] = self._copy_work(work)
        if boundary % ANCHOR_EVERY == 0:
            anchors[boundary] = work
        else:
            lru[boundary] = work
            while len(lru) > LRU_SIZE:
                lru.popitem(last=False)
        return work

    def snapshot_at(self, boundary: int) -> Dict[str, object]:
        """The legacy full snapshot dict for ``boundary``."""
        count = len(self)
        if boundary < 0:
            boundary += count
        if not 0 <= boundary < count:
            raise IndexError(boundary)
        return self._emit(self._materialize(boundary))

    def _emit(self, work: Dict[str, object]) -> Dict[str, object]:
        base_memory: Dict[str, object] = self.base["cpu"]["memory"]  # type: ignore[index]
        ram: Dict[str, List[int]] = work["ram"]  # type: ignore[assignment]
        memory: Dict[str, object] = {}
        for name in _RAM_REGIONS:
            words = ram.get(name)
            if words is None:
                # Untouched since the base: share its immutable bytes.
                memory[name] = base_memory[name]
            else:
                memory[name] = (
                    self._structs[name].pack(*words),
                    bytes(_parity(w) for w in words),
                )
        memory["mmio"] = dict(work["mmio"])  # type: ignore[arg-type]
        pc, psw, ir, mar, mdr, last_signature, instruction_index, halted = (
            work["scalars"]  # type: ignore[misc]
        )
        data, tags, valid, dirty = work["cache"]  # type: ignore[misc]
        engine, iteration = work["env"]  # type: ignore[misc]
        return {
            "cpu": {
                "regs": list(work["regs"]),  # type: ignore[call-overload]
                "pc": pc,
                "psw": psw,
                "ir": ir,
                "mar": mar,
                "mdr": mdr,
                "last_signature": last_signature,
                "instruction_index": instruction_index,
                "halted": halted,
                "cache": {
                    "data": list(data),
                    "tags": list(tags),
                    "valid": list(valid),
                    "dirty": list(dirty),
                },
                "memory": memory,
            },
            "env": {"engine": list(engine), "iteration": iteration},
        }


class MachineCursor:
    """Seats one machine (CPU + environment) at reference boundaries
    with O(touched) cost between consecutive experiments.

    :meth:`begin` must be called before every faulty execution.  It
    rewinds whatever the previous experiment dirtied (via the armed RAM
    undo logs plus a saved copy of the small state), walks forward
    deltas to the requested boundary, and re-arms.  Whenever its
    invariants cannot be proven — different reference, disarmed undo
    log (an external wholesale restore), backward or far-forward target,
    or a legacy snapshot list — it falls back to a full restore.

    Stat counters (``words_touched``, ``replayed_iterations``,
    ``full_restores``) accumulate until :meth:`take_stats`.
    """

    def __init__(self, cpu, environment):
        self.cpu = cpu
        self.environment = environment
        self.boundary: Optional[int] = None
        self._saved: Optional[tuple] = None
        self._reference = None
        self.words_touched = 0
        self.replayed_iterations = 0
        self.full_restores = 0

    def invalidate(self) -> None:
        """Forget everything; the next :meth:`begin` fully restores."""
        self.boundary = None
        self._saved = None
        self._reference = None
        memory = self.cpu.memory
        for name in _RAM_REGIONS:
            getattr(memory, name).undo = None

    def take_stats(self) -> Tuple[int, int, int]:
        """``(words_touched, replayed_iterations, full_restores)`` since
        the previous call; resets the counters."""
        stats = (self.words_touched, self.replayed_iterations, self.full_restores)
        self.words_touched = 0
        self.replayed_iterations = 0
        self.full_restores = 0
        return stats

    # -- the seat operation ------------------------------------------------------
    def begin(self, reference, boundary: int) -> None:
        """Seat the machine at ``reference``'s boundary ``boundary``."""
        cpu = self.cpu
        memory = cpu.memory
        rams = tuple(getattr(memory, name) for name in _RAM_REGIONS)
        store = reference.snapshots
        at = self.boundary
        armed = (
            self._reference is reference
            and self._saved is not None
            and at is not None
            and all(ram.undo is not None for ram in rams)
        )
        if (
            armed
            and isinstance(store, CheckpointStore)
            and at <= boundary <= at + FORWARD_REPLAY_LIMIT
        ):
            self.words_touched += self._rewind(rams)
            if boundary != at:
                self._walk(store, at, boundary)
                self.replayed_iterations += boundary - at
                self._capture(boundary)
            return
        # Full restore: either the fast path's invariants don't hold or
        # the target is behind/far ahead of the rewound boundary.
        snapshot = (
            store.snapshot_at(boundary)
            if isinstance(store, CheckpointStore)
            else store[boundary]
        )
        cpu.restore(snapshot["cpu"])
        self.environment.restore(snapshot["env"])
        self.full_restores += 1
        self._reference = reference
        self._capture(boundary)

    def _rewind(self, rams) -> int:
        """Unwind the previous experiment: write back undone RAM words
        and re-seat the saved small state.  Leaves the machine at
        ``self.boundary`` with empty, armed undo logs."""
        touched = 0
        memory = self.cpu.memory
        code_touched = False
        for ram in rams:
            undo = ram.undo
            if undo:
                words = ram.words
                parity = ram.parity
                for i, (w, p) in undo.items():
                    words[i] = w
                    parity[i] = p
                ram.version += 1
                touched += len(undo)
                if ram is memory.code or ram is memory.rodata:
                    code_touched = True
                undo.clear()
        if code_touched:
            memory.fetch_cache.clear()
        regs, scalars, cache_saved, mmio_saved, env_saved = self._saved  # type: ignore[misc]
        cpu = self.cpu
        cpu.regs[:] = regs
        (
            cpu.pc,
            cpu.psw,
            cpu.ir,
            cpu.mar,
            cpu.mdr,
            cpu.last_signature,
            cpu.instruction_index,
            cpu.halted,
        ) = scalars
        cpu.detection = None
        cache = cpu.cache
        data, tags, valid, dirty = cache_saved
        cache.data[:] = data
        cache.tags[:] = tags
        cache.valid[:] = valid
        cache.dirty[:] = dirty
        registers = memory.mmio.registers
        registers.clear()
        registers.update(mmio_saved)
        self.environment.restore(env_saved)
        return touched

    def _walk(self, store: CheckpointStore, start: int, stop: int) -> None:
        """Apply deltas ``start..stop-1`` to the live (clean) machine.

        RAM/cache/register writes go directly to the arrays — the undo
        logs are armed but *empty*, and replaying the fault-free
        reference forward must not be recorded as experiment damage.
        """
        cpu = self.cpu
        memory = cpu.memory
        cache = cpu.cache
        regs = cpu.regs
        data, tags, valid, dirty = cache.data, cache.tags, cache.valid, cache.dirty
        deltas = store.deltas
        code_touched = False
        delta = deltas[stop - 1]
        for t in range(start, stop):
            regs_delta, _scalars, cache_delta, ram_delta, _mmio, _env = deltas[t]
            for i, v in regs_delta:
                regs[i] = v
            for i, d, tg, vl, dy in cache_delta:
                data[i] = d
                tags[i] = tg
                valid[i] = vl
                dirty[i] = dy
            for name, changes in ram_delta:
                ram = getattr(memory, name)
                words = ram.words
                parity = ram.parity
                for i, w in changes:
                    words[i] = w
                    parity[i] = _parity(w)
                ram.version += 1
                if name == "code" or name == "rodata":
                    code_touched = True
        if code_touched:
            memory.fetch_cache.clear()
        _regs, scalars, _cache, _ram, mmio, env = delta
        (
            cpu.pc,
            cpu.psw,
            cpu.ir,
            cpu.mar,
            cpu.mdr,
            cpu.last_signature,
            cpu.instruction_index,
            cpu.halted,
        ) = scalars
        cpu.detection = None
        registers = memory.mmio.registers
        registers.clear()
        registers.update(mmio)
        engine, iteration = env
        self.environment.engine.set_state_vector(list(engine))
        self.environment.iteration = iteration

    def _capture(self, boundary: int) -> None:
        """Save the small state at ``boundary`` and arm the undo logs."""
        cpu = self.cpu
        cache = cpu.cache
        memory = cpu.memory
        self._saved = (
            list(cpu.regs),
            _cpu_scalars(cpu),
            (
                list(cache.data),
                list(cache.tags),
                list(cache.valid),
                list(cache.dirty),
            ),
            dict(memory.mmio.registers),
            self.environment.snapshot(),
        )
        for name in _RAM_REGIONS:
            getattr(memory, name).undo = {}
        self.boundary = boundary


class SplicedOutputs(Sequence):
    """An experiment's output sequence as prefix-view + own outputs +
    optional suffix-view over the reference outputs.

    Behaves like the ``List[float]`` it replaces — length, indexing,
    slicing, iteration, equality against any sequence, ``np.asarray``
    via ``__array__`` — but stores only the outputs the experiment
    actually produced.  Pickling flattens to a plain list (the receiver
    must not need the sender's reference object).
    """

    __slots__ = ("_source", "_prefix_len", "_mid", "_tail_start")

    def __init__(self, source: Sequence[float], prefix_len: int):
        self._source = source
        self._prefix_len = prefix_len
        self._mid: List[float] = []
        self._tail_start: Optional[int] = None

    def append(self, value: float) -> None:
        if self._tail_start is not None:
            raise ValueError("cannot append after the tail was spliced")
        self._mid.append(value)

    def splice_tail(self, start: int) -> None:
        """Terminate with the reference suffix ``source[start:]``."""
        self._tail_start = start

    def __len__(self) -> int:
        length = self._prefix_len + len(self._mid)
        if self._tail_start is not None:
            length += len(self._source) - self._tail_start
        return length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("SplicedOutputs index out of range")
        if index < self._prefix_len:
            return self._source[index]
        index -= self._prefix_len
        mid = self._mid
        if index < len(mid):
            return mid[index]
        return self._source[self._tail_start + index - len(mid)]  # type: ignore[operator]

    def __iter__(self) -> Iterator[float]:
        parts = [islice(iter(self._source), self._prefix_len), iter(self._mid)]
        if self._tail_start is not None:
            parts.append(islice(iter(self._source), self._tail_start, None))
        return chain(*parts)

    def __eq__(self, other) -> bool:
        if isinstance(other, (SplicedOutputs, list, tuple)):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"SplicedOutputs({list(self)!r})"

    def __array__(self, dtype=None, copy=None):
        import numpy

        return numpy.array(list(self), dtype=dtype)

    def __reduce__(self):
        # Cross-process (or cross-pickle) the view flattens to a plain
        # list: receivers never depend on the sender's reference object.
        return (list, (list(self),))
