"""Pre-runtime software-implemented fault injection (SWIFI, §3.3.1).

Besides scan-chain injection, GOOFI supports *pre-runtime SWIFI*: the
fault is planted in the program image before execution starts — a bit
flipped in an instruction word or an initialised data word — modelling a
corrupted load image or a persistent memory fault.  The whole run then
executes with the mutation in place.

Compared to SCIFI, pre-runtime faults skew heavily toward detected
errors (an instruction-word flip usually produces an illegal opcode,
register field or wild branch on first execution) and permanent value
failures (a corrupted constant or control-law instruction is wrong on
*every* iteration) — the bench `bench_ablation_prerun_swifi` quantifies
both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.classify import Outcome, classify_experiment
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import CampaignError
from repro.faults.models import FaultDescriptor, FaultTarget
from repro.goofi.environment import EngineEnvironment
from repro.goofi.pool import ReferencePool, WorkerPayload, worker_payload, worker_target
from repro.goofi.target import ExperimentRun, ReferenceRun, TargetSystem
from repro.tcc.codegen import CompiledProgram
from repro.thor.cpu import StepResult
from repro.thor.memory import WORD

#: Partition labels for image faults.
CODE_PARTITION = "code-image"
DATA_PARTITION = "data-image"


@dataclass(frozen=True)
class ImageFault:
    """One bit of the loaded program image, flipped before the run.

    Attributes:
        partition: :data:`CODE_PARTITION` or :data:`DATA_PARTITION`.
        address: word address in the target's memory.
        bit: bit position within the word.
    """

    partition: str
    address: int
    bit: int

    def label(self) -> str:
        """Human-readable description."""
        return f"{self.partition}@{self.address:#x}[{self.bit}]"


def sample_image_faults(
    workload: CompiledProgram,
    count: int,
    rng: np.random.Generator,
    include_data: bool = True,
) -> List[ImageFault]:
    """Uniformly sample image faults over the workload's code (and
    initialised data/rodata) words."""
    if count <= 0:
        raise CampaignError("count must be positive")
    program = workload.program
    locations: List[ImageFault] = []
    for i in range(len(program.code)):
        address = program.entry + i * WORD
        for bit in range(32):
            locations.append(ImageFault(CODE_PARTITION, address, bit))
    if include_data:
        for address in program.data:
            for bit in range(32):
                locations.append(ImageFault(DATA_PARTITION, address, bit))
    indices = rng.integers(0, len(locations), size=count)
    return [locations[int(i)] for i in indices]


def _execute_image_fault(
    workload: CompiledProgram,
    iterations: int,
    environment_factory,
    watchdog_factor: float,
    reference: ReferenceRun,
    fault: ImageFault,
    early_exit: bool = True,
    fast_dispatch: bool = True,
    incremental_hash: bool = True,
) -> ExperimentRun:
    """Execute one full run with the image mutation in place.

    Module-level so campaign workers can call it against their shipped
    reference.  Unlike SCIFI there is no checkpoint restart: the
    mutation exists from the first instruction, so the entire run is
    re-executed on a fresh target system.
    """
    target = TargetSystem(
        workload,
        environment=environment_factory(),
        iterations=iterations,
        watchdog_factor=watchdog_factor,
        fast_dispatch=fast_dispatch,
        incremental_hash=incremental_hash,
    )
    cpu = target.cpu
    env = target.environment
    cpu.load(workload.program)
    env.reset()
    target._warm_start_workload()
    # Plant the image fault before the first instruction runs.
    mutated = cpu.memory.peek(fault.address) ^ (1 << fault.bit)
    cpu.memory.poke(fault.address, mutated)
    cpu.ir = cpu.memory.fetch_word(cpu.pc)  # refresh the prefetch
    env.write_inputs(cpu.memory.mmio)

    descriptor = FaultDescriptor(
        FaultTarget(fault.partition, f"{fault.address:#x}", fault.bit), 0
    )
    outputs: List[float] = []
    watchdog = int(reference.max_iteration_instructions * watchdog_factor) + 500
    run = ExperimentRun(fault=descriptor, outputs=outputs)
    for k in range(iterations):
        result = cpu.run(watchdog)
        run.instructions_executed = cpu.instruction_index
        if result is StepResult.DETECTED:
            run.detection = cpu.detection
            run.detected_iteration = k
            return run
        if result is not StepResult.YIELD:
            run.timed_out = True
            held = outputs[-1] if outputs else env.initial_throttle()
            while len(outputs) < iterations:
                outputs.append(held)
            run.final_state_differs = True
            return run
        outputs.append(env.exchange(cpu.memory.mmio))
        if early_exit and target.boundary_hash() == reference.hashes[k + 1]:
            outputs.extend(reference.outputs[k + 1 :])
            run.early_exit_iteration = k + 1
            run.final_state_differs = False
            return run
    # The planted bit is itself a state difference, so an image fault
    # that was never overwritten counts as latent — the §4.1 scheme's
    # intent for surviving corruption.
    run.final_state_differs = target.boundary_hash() != reference.hashes[-1]
    return run


def _prerun_chunk(args):
    """Pool-worker entry point: run one slice of an image-fault plan.

    Uses the worker's shipped golden reference (outputs, hashes and the
    watchdog-sizing iteration cost); each experiment still builds its
    own fresh target, exactly as the serial path does.
    """
    chunk, early_exit = args
    payload = worker_payload()
    reference = worker_target().reference
    results = []
    for index, fault in chunk:
        run = _execute_image_fault(
            payload.workload,
            payload.iterations,
            payload.environment_factory,
            payload.watchdog_factor,
            reference,
            fault,
            early_exit=early_exit,
            fast_dispatch=payload.fast_dispatch,
            incremental_hash=payload.incremental_hash,
        )
        outcome = classify_experiment(
            observed=run.outputs,
            reference=reference.outputs,
            detected_by=(run.detection.mechanism.value if run.detection else None),
            final_state_differs=run.final_state_differs,
        )
        results.append((index, run, outcome))
    return results


class PreRuntimeCampaign:
    """A pre-runtime SWIFI campaign against a compiled workload."""

    def __init__(
        self,
        workload: CompiledProgram,
        iterations: int = 650,
        environment_factory=EngineEnvironment,
        watchdog_factor: float = 10.0,
        name: str = "pre-runtime SWIFI",
        fast_dispatch: bool = True,
        incremental_hash: bool = True,
    ):
        self.workload = workload
        self.iterations = iterations
        self.environment_factory = environment_factory
        self.watchdog_factor = watchdog_factor
        self.name = name
        self.fast_dispatch = fast_dispatch
        self.incremental_hash = incremental_hash
        # The golden target provides the reference outputs and hashes.
        self._target = TargetSystem(
            workload,
            environment=environment_factory(),
            iterations=iterations,
            watchdog_factor=watchdog_factor,
            fast_dispatch=fast_dispatch,
            incremental_hash=incremental_hash,
        )
        self._reference = self._target.run_reference()

    @property
    def reference_outputs(self) -> List[float]:
        """The golden output sequence."""
        return list(self._reference.outputs)

    def run_experiment(
        self, fault: ImageFault, early_exit: bool = True
    ) -> ExperimentRun:
        """Execute one full run with the image mutation in place.

        Unlike SCIFI there is no checkpoint restart: the mutation exists
        from the first instruction, so the entire run is re-executed.
        The early-exit hash splice still applies — if the mutated system
        ever reaches a state identical to the golden run's at the same
        boundary, the remainder is provably identical, so the reference
        output suffix is spliced in.  That happens only for mutations
        whose effect is erased — e.g. a flipped *data* word overwritten
        before first use; a *code* word flip keeps the image (and thus
        the state hash) different forever, so the splice never fires for
        it.  ``early_exit=False`` disables the splice (a test asserts
        outcomes are unchanged by it).
        """
        return _execute_image_fault(
            self.workload,
            self.iterations,
            self.environment_factory,
            self.watchdog_factor,
            self._reference,
            fault,
            early_exit=early_exit,
            fast_dispatch=self.fast_dispatch,
            incremental_hash=self.incremental_hash,
        )

    def _payload(self) -> WorkerPayload:
        """The pool payload for this campaign's workers — identical in
        shape to the SCIFI one, so a warm pool carries over between the
        two phases."""
        return WorkerPayload(
            workload=self.workload,
            iterations=self.iterations,
            watchdog_factor=self.watchdog_factor,
            environment_factory=self.environment_factory,
            reference=self._reference,
            fast_dispatch=self.fast_dispatch,
            incremental_hash=self.incremental_hash,
        )

    def run(
        self,
        faults: int,
        seed: int = 2001,
        include_data: bool = True,
        progress=None,
        workers: int = 1,
        pool: Optional[ReferencePool] = None,
    ) -> "PreRuntimeResult":
        """Run a whole campaign and classify every experiment.

        ``workers > 1`` (or an explicit ``pool``) deals the plan into
        strided slices executed by pool workers sharing this campaign's
        golden reference; results are reassembled into plan order, so
        they are identical to the serial run's.
        """
        rng = np.random.default_rng(seed)
        plan = sample_image_faults(self.workload, faults, rng, include_data)
        if pool is not None:
            workers = pool.workers
        if workers > 1:
            by_index = self._run_parallel(plan, workers, pool, progress)
            experiments = [by_index[i][0] for i in range(len(plan))]
            outcomes = [by_index[i][1] for i in range(len(plan))]
        else:
            experiments = []
            outcomes = []
            for i, fault in enumerate(plan):
                run = self.run_experiment(fault)
                outcome = classify_experiment(
                    observed=run.outputs,
                    reference=self._reference.outputs,
                    detected_by=(
                        run.detection.mechanism.value if run.detection else None
                    ),
                    final_state_differs=run.final_state_differs,
                )
                experiments.append(run)
                outcomes.append(outcome)
                if progress is not None:
                    progress(i + 1, len(plan), outcome)
        return PreRuntimeResult(
            name=self.name,
            experiments=experiments,
            outcomes=outcomes,
            reference_outputs=list(self._reference.outputs),
        )

    def _run_parallel(self, plan, workers, pool, progress):
        """Fan the plan out over shared-reference pool workers.

        A chunk whose worker fails (an exception or a process death) is
        re-executed serially in this process — one bad worker never
        loses any experiment, let alone the whole campaign.
        """
        from concurrent.futures import as_completed

        own_pool = pool is None
        if pool is None:
            pool = ReferencePool(workers)
        indexed = list(enumerate(plan))
        slices = [indexed[i::workers] for i in range(workers)]
        by_index = {}
        lost = []
        done = 0
        try:
            pool.prepare(self._payload())
            futures = {
                pool.submit(_prerun_chunk, (chunk, True)): chunk
                for chunk in slices
                if chunk
            }
            for future in as_completed(futures):
                try:
                    chunk_result = future.result()
                except Exception:
                    lost.append(futures[future])
                    continue
                for index, run, outcome in chunk_result:
                    by_index[index] = (run, outcome)
                    done += 1
                    if progress is not None:
                        progress(done, len(plan), outcome)
        finally:
            if own_pool:
                pool.close()
        for chunk in lost:
            for index, fault in chunk:
                if index in by_index:
                    continue
                run = self.run_experiment(fault)
                outcome = classify_experiment(
                    observed=run.outputs,
                    reference=self._reference.outputs,
                    detected_by=(
                        run.detection.mechanism.value if run.detection else None
                    ),
                    final_state_differs=run.final_state_differs,
                )
                by_index[index] = (run, outcome)
                done += 1
                if progress is not None:
                    progress(done, len(plan), outcome)
        return by_index


@dataclass
class PreRuntimeResult:
    """All experiments of a pre-runtime campaign."""

    name: str
    experiments: List[ExperimentRun]
    outcomes: List[Outcome]
    reference_outputs: List[float]

    def summary(self) -> CampaignSummary:
        """Aggregate into a table-ready summary."""
        records = [
            ClassifiedExperiment(
                partition=run.fault.target.partition, outcome=outcome
            )
            for run, outcome in zip(self.experiments, self.outcomes)
        ]
        return CampaignSummary(records, partition_sizes={}, name=self.name)
