"""Lockstep (master/slave) fault-injection experiments.

The paper's introduction frames the cost argument: strong failure
semantics via *duplication and comparison* needs two computers per node
(2(f+1) total), which is why the cost-sensitive world wants software
mechanisms instead.  Thor's MASTER/SLAVE COMPARATOR (Table 1's last row)
implements exactly that duplication; the paper lists it but does not use
it.

This module makes the comparison quantitative:
:class:`LockstepTarget` runs two CPUs in lockstep with the comparator
armed, injects faults into the *master* (whose outputs drive the
environment), and observes whether the comparator catches the error
before a wrong output escapes.  The companion bench shows the expected
trade: near-perfect coverage of effective faults at twice the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CampaignError
from repro.faults.models import FaultDescriptor
from repro.goofi.environment import EngineEnvironment
from repro.goofi.target import ExperimentRun, ReferenceRun, TargetSystem
from repro.tcc.codegen import CompiledProgram
from repro.thor.cpu import CPU, StepResult
from repro.thor.edm import DetectionEvent, Mechanism
from repro.thor.memory import MMIODevice
from repro.thor.scanchain import ScanChain


class LockstepTarget:
    """A duplication-and-comparison target system.

    Master and slave execute the same instruction stream; after every
    instruction the architectural states are compared and a divergence
    raises MASTER/SLAVE COMPARATOR ERROR (conceptually the comparator
    checks the buses each cycle; state comparison at instruction
    granularity is the same detection power in this model).

    Reuses a plain :class:`TargetSystem`'s reference run — fault-free,
    master and slave are identical, so golden data carries over.
    """

    def __init__(
        self,
        workload: CompiledProgram,
        environment: Optional[EngineEnvironment] = None,
        iterations: int = 650,
        watchdog_factor: float = 10.0,
    ):
        self.inner = TargetSystem(
            workload,
            environment=environment,
            iterations=iterations,
            watchdog_factor=watchdog_factor,
        )
        self.slave = CPU(self.inner.cpu.layout)
        self.slave.load(workload.program)

    def run_reference(self) -> ReferenceRun:
        """Golden run (single CPU — lockstep is fault-free identical)."""
        return self.inner.run_reference()

    @property
    def reference(self) -> Optional[ReferenceRun]:
        return self.inner.reference

    @property
    def scan_chain(self) -> ScanChain:
        return self.inner.scan_chain

    def run_experiment(self, fault: FaultDescriptor) -> ExperimentRun:
        """Inject into the master and run the pair to termination."""
        reference = self.inner.reference
        if reference is None:
            raise CampaignError("run_reference() must come first")
        start_iteration = reference.locate(fault.time)
        # The slave needs a full checkpoint image; the master seats
        # through the inner target's data plane (O(touched) restores).
        snapshot = reference.snapshots[start_iteration]
        master = self.inner.cpu
        env = self.inner.environment
        self.inner.restore_boundary(start_iteration)
        self.slave.restore(snapshot["cpu"])  # type: ignore[arg-type]

        replay = fault.time - reference.instructions_at[start_iteration]
        for _ in range(replay):
            master.step()
            self.slave.step()
        for target in fault.targets:
            self.inner.scan_chain.flip(target)

        outputs: List[float] = list(reference.outputs[:start_iteration])
        run = ExperimentRun(fault=fault, outputs=outputs)
        watchdog = (
            int(reference.max_iteration_instructions * self.inner.watchdog_factor)
            + 500
        )
        for k in range(start_iteration, self.inner.iterations):
            result = self._run_pair_until_yield(master, watchdog, run, k)
            if result is not StepResult.YIELD:
                if run.detection is not None:
                    return run
                run.timed_out = True
                held = outputs[-1] if outputs else env.initial_throttle()
                while len(outputs) < self.inner.iterations:
                    outputs.append(held)
                run.final_state_differs = True
                return run
            outputs.append(env.exchange(master.memory.mmio))
            # Mirror the exchanged inputs into the slave's MMIO.
            for offset in (MMIODevice.REFERENCE, MMIODevice.SPEED):
                self.slave.memory.mmio.write(
                    offset, master.memory.mmio.read(offset)
                )
        run.final_state_differs = True
        return run

    def _run_pair_until_yield(
        self, master: CPU, budget: int, run: ExperimentRun, iteration: int
    ) -> StepResult:
        for _ in range(budget):
            master_result = master.step()
            slave_result = self.slave.step()
            run.instructions_executed = master.instruction_index
            if master_result is StepResult.DETECTED:
                run.detection = master.detection
                run.detected_iteration = iteration
                return StepResult.DETECTED
            # The comparator checks the processors' bus-visible state
            # after every instruction: registers, PC/PSW and the
            # memory-interface latches (MAR/MDR cover every issued
            # access).  Cache-internal corruption surfaces on its first
            # load or write-back, exactly as on the physical comparator.
            if (
                master_result is not slave_result
                or master.register_state_bytes() != self.slave.register_state_bytes()
            ):
                run.detection = DetectionEvent(
                    mechanism=Mechanism.COMPARATOR_ERROR,
                    pc=master.pc,
                    instruction_index=master.instruction_index,
                    detail="lockstep divergence",
                )
                run.detected_iteration = iteration
                return StepResult.DETECTED
            if master_result is StepResult.YIELD:
                return StepResult.YIELD
            if master_result is StepResult.HALTED:
                return StepResult.HALTED
        return StepResult.OK
