"""GOOFI — the fault-injection tool (generic, object-oriented, §3).

The tool runs campaigns in the paper's four phases:

1. **configuration** — choose the fault-injection technique and target:
   :class:`ScifiCampaign` (scan-chain injection into the simulated CPU)
   or :func:`repro.goofi.swifi.run_model_campaign` (model-level software
   injection into Python controllers);
2. **set-up** — choose fault locations, fault model, injection times and
   the number of faults (uniform sampling, seeded);
3. **fault injection** — reference execution first, then one experiment
   per fault: restore the pre-fault checkpoint, replay to the injection
   instruction, flip the bit through the scan chain, and run to the
   termination condition (detection, 650 iterations, or watchdog);
4. **analysis** — §4.1 classification and Tables 2–4 style summaries,
   optionally persisted to a SQLite database.
"""

from repro.goofi.campaign import CampaignConfig, CampaignResult, ScifiCampaign
from repro.goofi.database import CampaignDatabase
from repro.goofi.detail import PropagationReport, trace_propagation
from repro.goofi.environment import EngineEnvironment
from repro.goofi.lockstep import LockstepTarget
from repro.goofi.memfault import (
    MemoryFault,
    run_memory_campaign,
    run_memory_experiment,
    sample_memory_faults,
)
from repro.goofi.prerun import (
    ImageFault,
    PreRuntimeCampaign,
    PreRuntimeResult,
    sample_image_faults,
)
from repro.goofi.pruning import (
    CollapsedPlan,
    PrunedPlan,
    ValidationReport,
    collapse_live_plan,
    preclassify_pairs,
    preclassify_plan,
    replay_equivalent,
    synthesize_run,
    validate_collapse,
    validate_pruning,
)
from repro.goofi.recovery import (
    ChaosSpec,
    RecoveryPolicy,
    ResultSink,
    backoff_seconds,
    config_fingerprint,
    workload_digest,
)
from repro.goofi.swifi import (
    ModelFault,
    ModelExperiment,
    run_model_campaign,
    sample_model_faults,
)
from repro.goofi.target import ExperimentRun, ReferenceRun, TargetSystem
from repro.goofi.workqueue import ExpiredLease, LeasedJob, NackOutcome, WorkQueue

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ScifiCampaign",
    "CampaignDatabase",
    "EngineEnvironment",
    "PropagationReport",
    "trace_propagation",
    "LockstepTarget",
    "MemoryFault",
    "run_memory_campaign",
    "run_memory_experiment",
    "sample_memory_faults",
    "ImageFault",
    "PreRuntimeCampaign",
    "PreRuntimeResult",
    "sample_image_faults",
    "CollapsedPlan",
    "PrunedPlan",
    "ValidationReport",
    "collapse_live_plan",
    "preclassify_pairs",
    "preclassify_plan",
    "replay_equivalent",
    "synthesize_run",
    "validate_collapse",
    "validate_pruning",
    "ChaosSpec",
    "RecoveryPolicy",
    "ResultSink",
    "backoff_seconds",
    "config_fingerprint",
    "workload_digest",
    "TargetSystem",
    "ReferenceRun",
    "ExperimentRun",
    "ModelFault",
    "ModelExperiment",
    "run_model_campaign",
    "sample_model_faults",
    "WorkQueue",
    "LeasedJob",
    "NackOutcome",
    "ExpiredLease",
]
