"""Lease-based SQLite work queue for campaign execution.

The chunk-dispatch loop used to live inside
:meth:`~repro.goofi.campaign.ScifiCampaign._run_parallel` as a deque
plus a handful of retry counters.  This module extracts it into a
durable, inspectable queue so the *same* failure semantics serve two
deployments:

* **pool mode** — the campaign parent enqueues plan chunks and leases
  them on behalf of its ``ProcessPoolExecutor`` workers.  The queue is
  the bookkeeping substrate (attempts, suspect flags, kill/failure
  budgets, idempotent acks); scheduling order and backoff sleeps stay
  exactly as the old in-memory loop had them.
* **service mode** — ``repro serve`` workers in separate processes
  lease whole campaigns from a shared queue file
  (:mod:`repro.service`).  Leases carry heartbeat deadlines; a worker
  that dies by SIGKILL simply stops heartbeating, its lease expires,
  and the job is requeued for the next worker to resume.

Failure taxonomy → queue action (see ``docs/robustness.md``):

========================  =========================================
observation               action
========================  =========================================
worker exception          ``nack(killed=False)`` → requeue/split
worker process death      ``nack(killed=True)`` → requeue as suspect
missed heartbeats         ``expire_due`` → requeue, ``attempt + 1``
budget exhausted          ``nack`` returns ``exhausted`` → caller
                          quarantines (chunk) or fails the job
cancel requested          ``request_cancel`` → pending jobs cancel
                          immediately, leased jobs at the worker's
                          next heartbeat poll
========================  =========================================

Acks are **idempotent by plan index**: ``job_acks`` records which
``(topic, plan_index)`` pairs have been counted, and :meth:`WorkQueue.ack`
returns only the newly acked indices — a worker that acks and dies (or
a lease that expired under a worker which then finished anyway) can
never double-count an experiment.

A chunk that repeatedly fails is bisected with
:func:`~repro.goofi.recovery.split_chunk` to isolate the poison
experiment; a chunk that was in flight when the pool broke is requeued
``suspect`` so the dispatcher re-runs it in isolation and a repeat kill
has certain attribution (only certain kills count toward quarantine —
see the suspect-isolation rationale in ``docs/robustness.md``).

The queue schema (``jobs``/``leases``/``job_acks``) is part of the
campaign database since schema v6, so a file-backed campaign's chunk
queue lives next to its results; a standalone queue file (the service's
``service.db``) carries only these three tables.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DatabaseError
from repro.goofi.recovery import RecoveryPolicy, backoff_seconds, split_chunk

#: Milliseconds a writer waits on a locked queue before failing.
BUSY_TIMEOUT_MS = 5_000

#: The queue tables, shared with :mod:`repro.goofi.database` (schema
#: v6): ``CREATE IF NOT EXISTS`` keeps both owners idempotent.
QUEUE_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    topic TEXT NOT NULL,
    payload BLOB NOT NULL,
    plan_indices TEXT NOT NULL DEFAULT '[]',
    status TEXT NOT NULL DEFAULT 'pending',
    attempt INTEGER NOT NULL DEFAULT 0,
    suspect INTEGER NOT NULL DEFAULT 0,
    kills INTEGER NOT NULL DEFAULT 0,
    failures INTEGER NOT NULL DEFAULT 0,
    expiries INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    available_at REAL NOT NULL DEFAULT 0.0,
    created_at REAL,
    done_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_topic_status
    ON jobs(topic, status, available_at, id);
CREATE TABLE IF NOT EXISTS leases (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id INTEGER NOT NULL REFERENCES jobs(id),
    worker TEXT NOT NULL,
    granted_at REAL NOT NULL,
    deadline REAL NOT NULL,
    heartbeat_at REAL NOT NULL,
    released TEXT
);
CREATE INDEX IF NOT EXISTS idx_leases_open ON leases(released, deadline);
CREATE TABLE IF NOT EXISTS job_acks (
    topic TEXT NOT NULL,
    plan_index INTEGER NOT NULL,
    job_id INTEGER NOT NULL,
    acked_at REAL NOT NULL,
    PRIMARY KEY (topic, plan_index)
);
"""


@dataclass
class LeasedJob:
    """One job claimed by a worker, valid until ``deadline``."""

    job_id: int
    lease_id: int
    topic: str
    items: List
    attempt: int
    suspect: bool
    worker: str
    deadline: float


@dataclass
class NackOutcome:
    """What the queue decided about a failed job.

    ``action`` is ``'requeued'`` (same job, ``attempt + 1``),
    ``'split'`` (two new half-size jobs replace it) or ``'exhausted'``
    (a single-item job crossed its kill/failure budget; the caller owns
    the consequence — chunk dispatchers quarantine the experiment,
    the service marks the campaign job failed).  ``delay`` is the
    capped exponential backoff for the attempt that just failed; in
    pool mode the dispatcher sleeps it (so tests can inject a no-op
    sleep), in service mode it is baked into ``available_at`` instead
    (``defer=True``).
    """

    action: str
    delay: float
    attempt: int
    items: List
    suspect: bool
    job_ids: List[int] = field(default_factory=list)


@dataclass
class ExpiredLease:
    """One lease whose heartbeat deadline passed (job requeued)."""

    lease_id: int
    job_id: int
    worker: str
    deadline: float
    expiries: int


class WorkQueue:
    """A lease-based work queue over SQLite.

    Args:
        path: queue database file; ``None`` opens a private in-memory
            queue (the default for campaigns run without a database).
        policy: the :class:`~repro.goofi.recovery.RecoveryPolicy` whose
            backoff curve and kill/failure budgets drive ``nack``.
        conn: share an existing connection instead of opening one —
            used by in-memory campaign databases, where a second
            ``:memory:`` connection would see a different database.
        clock: injectable time source (tests drive lease expiry with a
            fake clock instead of sleeping).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        policy: Optional[RecoveryPolicy] = None,
        conn: Optional[sqlite3.Connection] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.policy = policy or RecoveryPolicy()
        self.clock = clock
        self._owns_conn = conn is None
        if conn is not None:
            self._conn = conn
        else:
            self.path = path or ":memory:"
            # ``check_same_thread=False``: service workers may share one
            # queue object across threads; every statement runs inside
            # its own short transaction.
            self._conn = sqlite3.connect(
                self.path,
                timeout=BUSY_TIMEOUT_MS / 1000.0,
                check_same_thread=False,
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(QUEUE_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        """Close the connection (a no-op for shared connections)."""
        if self._owns_conn:
            self._conn.close()

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- producing -------------------------------------------------------------
    def enqueue(
        self,
        items: Sequence,
        topic: str = "work",
        indices: Optional[Sequence[int]] = None,
        attempt: int = 0,
        suspect: bool = False,
        delay: float = 0.0,
    ) -> int:
        """Add one job holding ``items`` (any picklable sequence).

        ``indices`` are the plan indices the job completes (used for
        idempotent acks); by default they are taken from items shaped
        like ``(plan_index, fault)`` pairs, and a job whose items are
        opaque (e.g. a whole campaign submission) acks no indices.
        Returns the job id.
        """
        if indices is None:
            try:
                indices = [int(index) for index, _payload in items]
            except (TypeError, ValueError):
                indices = []
        now = self.clock()
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO jobs (topic, payload, plan_indices, status,"
                " attempt, suspect, available_at, created_at)"
                " VALUES (?, ?, ?, 'pending', ?, ?, ?, ?)",
                (
                    topic,
                    pickle.dumps(list(items)),
                    json.dumps(list(indices)),
                    int(attempt),
                    1 if suspect else 0,
                    now + max(0.0, delay),
                    now,
                ),
            )
        return int(cursor.lastrowid)

    # -- consuming -------------------------------------------------------------
    def lease(
        self,
        worker: str,
        ttl: Optional[float] = None,
        topic: str = "work",
        suspect_only: bool = False,
        job_id: Optional[int] = None,
    ) -> Optional[LeasedJob]:
        """Claim the oldest available job for ``worker``; None when empty.

        The lease must be :meth:`heartbeat`-ed (or resolved) within
        ``ttl`` seconds or :meth:`expire_due` requeues the job.  Due
        leases of the topic are expired before claiming, so one polling
        worker is enough to keep the topic live.  ``job_id`` targets a
        specific pending job (the dispatcher uses it to lease the chunk
        it just drew from the reservoir, not an arbitrary requeue);
        ``suspect_only`` restricts the claim to suspect jobs.
        """
        self.expire_due(topic=topic)
        now = self.clock()
        ttl = self.policy.lease_ttl if ttl is None else ttl
        where = "topic = ? AND status = 'pending' AND available_at <= ?"
        params: List = [topic, now]
        if suspect_only:
            where += " AND suspect = 1"
        if job_id is not None:
            where += " AND id = ?"
            params.append(job_id)
        while True:
            row = self._conn.execute(
                f"SELECT id, payload, attempt, suspect FROM jobs WHERE {where}"
                " ORDER BY available_at, id LIMIT 1",
                params,
            ).fetchone()
            if row is None:
                return None
            candidate, payload, attempt, suspect = row
            with self._conn:
                claimed = self._conn.execute(
                    "UPDATE jobs SET status = 'leased'"
                    " WHERE id = ? AND status = 'pending'",
                    (candidate,),
                ).rowcount
                if not claimed:
                    continue  # another worker won the race; try the next
                cursor = self._conn.execute(
                    "INSERT INTO leases (job_id, worker, granted_at,"
                    " deadline, heartbeat_at) VALUES (?, ?, ?, ?, ?)",
                    (candidate, worker, now, now + ttl, now),
                )
            return LeasedJob(
                job_id=int(candidate),
                lease_id=int(cursor.lastrowid),
                topic=topic,
                items=pickle.loads(payload),
                attempt=int(attempt),
                suspect=bool(suspect),
                worker=worker,
                deadline=now + ttl,
            )

    def heartbeat(self, lease_id: int, ttl: Optional[float] = None) -> None:
        """Extend a live lease's deadline by ``ttl`` from now."""
        ttl = self.policy.lease_ttl if ttl is None else ttl
        now = self.clock()
        with self._conn:
            updated = self._conn.execute(
                "UPDATE leases SET heartbeat_at = ?, deadline = ?"
                " WHERE id = ? AND released IS NULL",
                (now, now + ttl, lease_id),
            ).rowcount
        if not updated:
            raise DatabaseError(f"lease {lease_id} is not live")

    def expire_due(
        self, topic: Optional[str] = None, now: Optional[float] = None
    ) -> List[ExpiredLease]:
        """Requeue every job whose lease missed its heartbeat deadline.

        The expired lease is closed (``released = 'expired'``) and the
        job goes back to ``pending`` with ``attempt`` and ``expiries``
        bumped — immediately available, since the worker holding it is
        presumed dead, not failing.
        """
        now = self.clock() if now is None else now
        query = (
            "SELECT l.id, l.job_id, l.worker, l.deadline FROM leases l"
            " JOIN jobs j ON j.id = l.job_id"
            " WHERE l.released IS NULL AND l.deadline < ?"
        )
        params: List = [now]
        if topic is not None:
            query += " AND j.topic = ?"
            params.append(topic)
        expired: List[ExpiredLease] = []
        with self._conn:
            for lease_id, job_id, worker, deadline in self._conn.execute(
                query, params
            ).fetchall():
                self._conn.execute(
                    "UPDATE leases SET released = 'expired' WHERE id = ?",
                    (lease_id,),
                )
                self._conn.execute(
                    "UPDATE jobs SET status = 'pending', attempt = attempt + 1,"
                    " expiries = expiries + 1, available_at = ?"
                    " WHERE id = ? AND status = 'leased'",
                    (now, job_id),
                )
                expiries = self._conn.execute(
                    "SELECT expiries FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()[0]
                expired.append(
                    ExpiredLease(
                        lease_id=int(lease_id),
                        job_id=int(job_id),
                        worker=str(worker),
                        deadline=float(deadline),
                        expiries=int(expiries),
                    )
                )
        return expired

    # -- resolving -------------------------------------------------------------
    def _lease_job(self, lease_id: int) -> Tuple[int, str]:
        row = self._conn.execute(
            "SELECT l.job_id, j.topic FROM leases l JOIN jobs j"
            " ON j.id = l.job_id WHERE l.id = ?",
            (lease_id,),
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no lease with id {lease_id}")
        return int(row[0]), str(row[1])

    def ack(
        self, lease_id: int, indices: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Complete a leased job; returns the *newly* acked plan indices.

        Idempotent by ``(topic, plan_index)``: indices another job (or
        an earlier incarnation of this one) already acked are filtered
        out, so the caller records each experiment exactly once no
        matter how leases expired and overlapped.
        """
        job_id, topic = self._lease_job(lease_id)
        now = self.clock()
        if indices is None:
            stored = self._conn.execute(
                "SELECT plan_indices FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            indices = json.loads(stored[0]) if stored else []
        newly: List[int] = []
        with self._conn:
            for index in indices:
                inserted = self._conn.execute(
                    "INSERT OR IGNORE INTO job_acks"
                    " (topic, plan_index, job_id, acked_at)"
                    " VALUES (?, ?, ?, ?)",
                    (topic, int(index), job_id, now),
                ).rowcount
                if inserted:
                    newly.append(int(index))
            self._conn.execute(
                "UPDATE jobs SET status = 'done', done_at = ? WHERE id = ?",
                (now, job_id),
            )
            self._conn.execute(
                "UPDATE leases SET released = 'acked'"
                " WHERE id = ? AND released IS NULL",
                (lease_id,),
            )
        return newly

    def nack(
        self,
        lease_id: int,
        killed: bool,
        certain: bool = True,
        reason: str = "",
        defer: bool = False,
    ) -> NackOutcome:
        """Fail a leased job: requeue, split, or declare it exhausted.

        ``killed`` says the worker process died (vs an ordinary
        exception); ``certain`` says the failure is attributable to
        this job (a pool break with several chunks in flight is not).
        Only certain failures of single-item jobs count toward the
        policy's quarantine thresholds — ``quarantine_after`` kills or
        ``max_chunk_retries`` failures — after which the job is marked
        ``failed`` and ``'exhausted'`` is returned with the items for
        the caller to quarantine.  Multi-item jobs are bisected into
        two fresh jobs to isolate the poison experiment.  ``defer``
        bakes the backoff delay into ``available_at`` (service mode);
        without it the job is immediately available and the caller owns
        the sleep (pool mode, where tests inject a no-op sleep).
        """
        job_id, topic = self._lease_job(lease_id)
        row = self._conn.execute(
            "SELECT payload, plan_indices, attempt, suspect, kills, failures"
            " FROM jobs WHERE id = ?",
            (job_id,),
        ).fetchone()
        payload, indices_json, attempt, suspect, kills, failures = row
        items = pickle.loads(payload)
        now = self.clock()
        delay = backoff_seconds(int(attempt), self.policy)
        new_suspect = bool(suspect) or killed
        with self._conn:
            self._conn.execute(
                "UPDATE leases SET released = 'nacked'"
                " WHERE id = ? AND released IS NULL",
                (lease_id,),
            )
            if len(items) == 1 and certain:
                kills += 1 if killed else 0
                failures += 0 if killed else 1
                threshold = (
                    self.policy.quarantine_after
                    if killed
                    else self.policy.max_chunk_retries
                )
                count = kills if killed else failures
                self._conn.execute(
                    "UPDATE jobs SET kills = ?, failures = ? WHERE id = ?",
                    (kills, failures, job_id),
                )
                if count >= threshold:
                    self._conn.execute(
                        "UPDATE jobs SET status = 'failed', done_at = ?"
                        " WHERE id = ?",
                        (now, job_id),
                    )
                    return NackOutcome(
                        action="exhausted",
                        delay=delay,
                        attempt=int(attempt) + 1,
                        items=items,
                        suspect=new_suspect,
                        job_ids=[job_id],
                    )
            if len(items) > 1:
                self._conn.execute(
                    "UPDATE jobs SET status = 'split', done_at = ? WHERE id = ?",
                    (now, job_id),
                )
        if len(items) > 1:
            first, second = split_chunk(items)
            job_ids = [
                self.enqueue(
                    half,
                    topic=topic,
                    attempt=int(attempt) + 1,
                    suspect=new_suspect,
                    delay=delay if defer else 0.0,
                )
                for half in (first, second)
            ]
            return NackOutcome(
                action="split",
                delay=delay,
                attempt=int(attempt) + 1,
                items=items,
                suspect=new_suspect,
                job_ids=job_ids,
            )
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET status = 'pending', attempt = attempt + 1,"
                " suspect = ?, available_at = ? WHERE id = ?",
                (1 if new_suspect else 0, now + (delay if defer else 0.0), job_id),
            )
        return NackOutcome(
            action="requeued",
            delay=delay,
            attempt=int(attempt) + 1,
            items=items,
            suspect=new_suspect,
            job_ids=[job_id],
        )

    def release(self, lease_id: int) -> None:
        """Return a leased job to ``pending`` untouched (no attempt bump).

        Used when the *submission* failed — e.g. the process pool turned
        out broken before the chunk ever ran — so the job keeps its
        place at the front of the queue.
        """
        job_id, _topic = self._lease_job(lease_id)
        with self._conn:
            self._conn.execute(
                "UPDATE leases SET released = 'released'"
                " WHERE id = ? AND released IS NULL",
                (lease_id,),
            )
            self._conn.execute(
                "UPDATE jobs SET status = 'pending'"
                " WHERE id = ? AND status = 'leased'",
                (job_id,),
            )

    # -- cancellation ----------------------------------------------------------
    def request_cancel(self, job_id: int) -> str:
        """Cancel a job: pending jobs cancel now, leased ones get flagged.

        Returns the resulting job status (``'cancelled'`` immediately,
        or the current status with ``cancel_requested`` set — the
        leasing worker polls :meth:`cancel_requested` at its heartbeat
        cadence and aborts).
        """
        with self._conn:
            cancelled = self._conn.execute(
                "UPDATE jobs SET status = 'cancelled', cancel_requested = 1,"
                " done_at = ? WHERE id = ? AND status = 'pending'",
                (self.clock(), job_id),
            ).rowcount
            if not cancelled:
                flagged = self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?",
                    (job_id,),
                ).rowcount
                if not flagged:
                    raise DatabaseError(f"no job with id {job_id}")
        row = self._conn.execute(
            "SELECT status FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return str(row[0])

    def cancel_requested(self, job_id: int) -> bool:
        """Whether a cancel was requested for this job."""
        row = self._conn.execute(
            "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return bool(row and row[0])

    def finish_cancel(self, lease_id: int) -> None:
        """A leased worker honoured a cancel: close lease and job."""
        job_id, _topic = self._lease_job(lease_id)
        with self._conn:
            self._conn.execute(
                "UPDATE leases SET released = 'cancelled'"
                " WHERE id = ? AND released IS NULL",
                (lease_id,),
            )
            self._conn.execute(
                "UPDATE jobs SET status = 'cancelled', done_at = ?"
                " WHERE id = ?",
                (self.clock(), job_id),
            )

    # -- inspection and bulk operations ----------------------------------------
    def pending(self, topic: str = "work") -> int:
        """Pending (available or deferred) jobs in a topic."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE topic = ? AND status = 'pending'",
            (topic,),
        ).fetchone()
        return int(row[0])

    def outstanding(self, topic: str = "work") -> int:
        """Jobs not yet resolved (pending or leased)."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE topic = ?"
            " AND status IN ('pending', 'leased')",
            (topic,),
        ).fetchone()
        return int(row[0])

    def stale_leases(self, topic: Optional[str] = None) -> int:
        """Leases that have expired over the queue's lifetime."""
        query = (
            "SELECT COUNT(*) FROM leases l JOIN jobs j ON j.id = l.job_id"
            " WHERE l.released = 'expired'"
        )
        params: List = []
        if topic is not None:
            query += " AND j.topic = ?"
            params.append(topic)
        return int(self._conn.execute(query, params).fetchone()[0])

    def job_state(self, job_id: int) -> Dict[str, object]:
        """One job's queue-side state (status, budgets, lease)."""
        row = self._conn.execute(
            "SELECT topic, status, attempt, suspect, kills, failures,"
            " expiries, cancel_requested, created_at, done_at"
            " FROM jobs WHERE id = ?",
            (job_id,),
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no job with id {job_id}")
        (
            topic, status, attempt, suspect, kills, failures,
            expiries, cancel_requested, created_at, done_at,
        ) = row
        lease = self._conn.execute(
            "SELECT worker, deadline, heartbeat_at FROM leases"
            " WHERE job_id = ? AND released IS NULL"
            " ORDER BY id DESC LIMIT 1",
            (job_id,),
        ).fetchone()
        state: Dict[str, object] = {
            "job_id": int(job_id),
            "topic": str(topic),
            "status": str(status),
            "attempt": int(attempt),
            "suspect": bool(suspect),
            "kills": int(kills),
            "failures": int(failures),
            "expiries": int(expiries),
            "cancel_requested": bool(cancel_requested),
            "created_at": created_at,
            "done_at": done_at,
            "lease": None,
        }
        if lease is not None:
            worker, deadline, heartbeat_at = lease
            state["lease"] = {
                "worker": str(worker),
                "deadline": float(deadline),
                "heartbeat_at": float(heartbeat_at),
                "stale": float(deadline) < self.clock(),
            }
        return state

    def list_jobs(self, topic: str = "work") -> List[Dict[str, object]]:
        """Every job in a topic, oldest first (service listings)."""
        rows = self._conn.execute(
            "SELECT id FROM jobs WHERE topic = ? ORDER BY id", (topic,)
        ).fetchall()
        return [self.job_state(int(row[0])) for row in rows]

    def drain(self, topic: str = "work") -> List:
        """Cancel every pending job and return their items, in id order.

        The serial-fallback path uses this to pull the remaining
        experiments back into the parent once the pool budget is out.
        """
        rows = self._conn.execute(
            "SELECT id, payload FROM jobs WHERE topic = ?"
            " AND status = 'pending' ORDER BY id",
            (topic,),
        ).fetchall()
        items: List = []
        now = self.clock()
        with self._conn:
            for job_id, payload in rows:
                items.extend(pickle.loads(payload))
                self._conn.execute(
                    "UPDATE jobs SET status = 'cancelled', done_at = ?"
                    " WHERE id = ? AND status = 'pending'",
                    (now, job_id),
                )
        return items

    def purge(self, topic: str = "work") -> None:
        """Delete a topic's jobs, leases and acks (fresh dispatch run)."""
        with self._conn:
            self._conn.execute(
                "DELETE FROM leases WHERE job_id IN"
                " (SELECT id FROM jobs WHERE topic = ?)",
                (topic,),
            )
            self._conn.execute("DELETE FROM jobs WHERE topic = ?", (topic,))
            self._conn.execute("DELETE FROM job_acks WHERE topic = ?", (topic,))
