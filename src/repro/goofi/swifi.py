"""Model-level software-implemented fault injection (SWIFI).

GOOFI supports multiple injection techniques (§3.3.1).  Next to the
scan-chain technique, this module injects bit-flips directly into the
*state variables* of model-level Python controllers running in the
closed loop — the fast path used for large state-corruption studies
(Figures 7–10 shapes, assertion/recovery ablations).

There are no hardware detection mechanisms at this level, so every
experiment is classified among the undetected-wrong-result and
non-effective categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.analysis.classify import Outcome, classify_experiment
from repro.analysis.report import CampaignSummary, ClassifiedExperiment
from repro.errors import CampaignError
from repro.faults.bitflip import flip_float64_bit, flip_float_bit
from repro.goofi.environment import EngineEnvironment
from repro.plant.engine import EngineModel
from repro.plant.profiles import ITERATIONS

#: Partition label used for model-level campaigns.
STATE_PARTITION = "state"


@dataclass(frozen=True)
class ModelFault:
    """A bit-flip in one controller state variable at one iteration.

    Attributes:
        state_index: position within ``controller.state_vector()``.
        bit: bit position within the chosen representation.
        iteration: control iteration before which the flip is applied.
        representation: ``"float32"`` (value is rounded to single
            precision first, matching a 32-bit datapath) or ``"float64"``.
    """

    state_index: int
    bit: int
    iteration: int
    representation: str = "float32"

    def apply(self, value: float) -> float:
        """The flipped value."""
        if self.representation == "float32":
            return flip_float_bit(value, self.bit)
        if self.representation == "float64":
            return flip_float64_bit(value, self.bit)
        raise CampaignError(f"unknown representation {self.representation!r}")

    def label(self) -> str:
        """Human-readable description."""
        return f"state[{self.state_index}] bit {self.bit} @ iter {self.iteration}"


@dataclass
class ModelExperiment:
    """One model-level experiment: the fault, its outputs and outcome."""

    fault: ModelFault
    outputs: List[float]
    outcome: Outcome
    assertion_events: int = 0


def sample_model_faults(
    state_width: int,
    count: int,
    rng: np.random.Generator,
    iterations: int = ITERATIONS,
    representation: str = "float32",
) -> List[ModelFault]:
    """Uniformly sample model-level faults over (state, bit, iteration)."""
    if state_width <= 0 or count <= 0:
        raise CampaignError("state_width and count must be positive")
    bits = 32 if representation == "float32" else 64
    return [
        ModelFault(
            state_index=int(rng.integers(0, state_width)),
            bit=int(rng.integers(0, bits)),
            iteration=int(rng.integers(0, iterations)),
            representation=representation,
        )
        for _ in range(count)
    ]


def _run_loop(
    controller,
    environment: EngineEnvironment,
    iterations: int,
    fault: Optional[ModelFault],
) -> List[float]:
    """Run the closed loop, optionally injecting one fault."""
    controller.reset()
    environment.reset()
    if environment.warm_start and hasattr(controller, "warm_start"):
        reference0 = environment.reference.value(0.0)
        controller.warm_start(reference0, reference0, environment.initial_throttle())
    engine = environment.engine
    outputs: List[float] = []
    for k in range(iterations):
        if fault is not None and fault.iteration == k:
            state = controller.state_vector()
            state[fault.state_index] = fault.apply(state[fault.state_index])
            controller.set_state_vector(state)
        t = k * engine.params.sample_time
        reference = environment.reference.value(t)
        measured = engine.speed
        command = controller.step(reference, measured)
        engine.step(command, environment.load.value(t))
        outputs.append(command)
    return outputs


def run_model_campaign(
    controller_factory: Callable[[], object],
    faults: int = 1000,
    seed: int = 2001,
    iterations: int = ITERATIONS,
    representation: str = "float32",
    environment_factory: Callable[[], EngineEnvironment] = EngineEnvironment,
    name: str = "model campaign",
) -> "ModelCampaignResult":
    """Run a model-level SWIFI campaign against a controller.

    Args:
        controller_factory: builds a fresh controller exposing ``step``,
            ``reset``, ``state_vector`` and ``set_state_vector``.
        faults: number of experiments.
        seed: sampling seed.
        iterations: loop iterations per experiment.
        representation: bit-flip representation (see :class:`ModelFault`).
        environment_factory: builds the engine environment.
        name: campaign label for summaries.
    """
    rng = np.random.default_rng(seed)
    golden_controller = controller_factory()
    environment = environment_factory()
    golden = _run_loop(golden_controller, environment, iterations, fault=None)
    golden_final = (
        list(golden_controller.state_vector()),
        list(environment.engine.state_vector()),
    )
    state_width = len(golden_controller.state_vector())
    plan = sample_model_faults(
        state_width=state_width,
        count=faults,
        rng=rng,
        iterations=iterations,
        representation=representation,
    )
    experiments: List[ModelExperiment] = []
    for fault in plan:
        controller = controller_factory()
        env = environment_factory()
        outputs = _run_loop(controller, env, iterations, fault=fault)
        final_differs = (
            list(controller.state_vector()) != golden_final[0]
            or list(env.engine.state_vector()) != golden_final[1]
        )
        outcome = classify_experiment(
            observed=outputs,
            reference=golden,
            detected_by=None,
            final_state_differs=final_differs,
        )
        monitor = getattr(controller, "monitor", None)
        events = monitor.count() if monitor is not None else 0
        experiments.append(
            ModelExperiment(
                fault=fault, outputs=outputs, outcome=outcome,
                assertion_events=events,
            )
        )
    return ModelCampaignResult(
        name=name,
        golden_outputs=golden,
        experiments=experiments,
        state_width=state_width,
        representation=representation,
    )


@dataclass
class ModelCampaignResult:
    """All experiments of a model-level campaign."""

    name: str
    golden_outputs: List[float]
    experiments: List[ModelExperiment]
    state_width: int
    representation: str

    def summary(self) -> CampaignSummary:
        """Aggregate into a table-ready summary (one partition)."""
        bits = 32 if self.representation == "float32" else 64
        records = [
            ClassifiedExperiment(partition=STATE_PARTITION, outcome=e.outcome)
            for e in self.experiments
        ]
        return CampaignSummary(
            records=records,
            partition_sizes={STATE_PARTITION: self.state_width * bits},
            name=self.name,
        )
