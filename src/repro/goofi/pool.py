"""A persistent worker pool that shares one golden reference run.

Before this module existed, every campaign worker re-executed the full
651-iteration golden reference before touching its first fault — pure
redundancy, since the reference is deterministic and identical across
workers.  :class:`ReferencePool` instead computes the
:class:`~repro.goofi.target.ReferenceRun` once in the parent and ships
its snapshots/hashes/outputs to each worker process through the executor
*initializer*, so the payload is pickled once per process rather than
once per task.  The pool is deliberately long-lived: the SCIFI
injection phase, a pruning-validation re-run and a pre-runtime SWIFI
phase can all reuse the same warm workers, as long as their payloads are
compatible (:meth:`ReferencePool.prepare` re-initialises the pool only
when they are not).

Setting ``reference=None`` in the payload restores the legacy behaviour
— each worker runs its own golden reference during initialisation —
which the benchmark uses as the shared-reference baseline.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import CampaignError
from repro.goofi.environment import EngineEnvironment
from repro.goofi.target import ReferenceRun, TargetSystem
from repro.tcc.codegen import CompiledProgram


@dataclass
class WorkerPayload:
    """Everything a worker needs to build its target system once."""

    workload: CompiledProgram
    iterations: int
    watchdog_factor: float
    environment_factory: Callable[[], EngineEnvironment]
    #: The parent's golden run, or ``None`` to make each worker compute
    #: its own (the pre-optimisation baseline).
    reference: Optional[ReferenceRun]
    fast_dispatch: bool = True
    incremental_hash: bool = True


#: Per-process state, populated by :func:`_initialize_worker`.
_WORKER_TARGET: Optional[TargetSystem] = None
_WORKER_PAYLOAD: Optional[WorkerPayload] = None


def _initialize_worker(payload: WorkerPayload) -> None:
    """Executor initializer: build this process's target system.

    With a shipped reference the worker only loads the program (the
    loader also derives the control-flow signature successors the SIG
    checks need) and adopts the parent's checkpoints; experiments then
    start from restored snapshots.  Without one it re-runs the golden
    reference, exactly as the legacy per-chunk workers did.
    """
    global _WORKER_TARGET, _WORKER_PAYLOAD
    target = TargetSystem(
        workload=payload.workload,
        environment=payload.environment_factory(),
        iterations=payload.iterations,
        watchdog_factor=payload.watchdog_factor,
        fast_dispatch=payload.fast_dispatch,
        incremental_hash=payload.incremental_hash,
    )
    if payload.reference is None:
        target.run_reference()
    else:
        target.cpu.load(payload.workload.program)
        target.reference = payload.reference
    _WORKER_TARGET = target
    _WORKER_PAYLOAD = payload


def worker_target() -> TargetSystem:
    """The calling worker process's target system."""
    if _WORKER_TARGET is None:
        raise CampaignError("not inside an initialised pool worker")
    return _WORKER_TARGET


def worker_payload() -> WorkerPayload:
    """The calling worker process's initialisation payload."""
    if _WORKER_PAYLOAD is None:
        raise CampaignError("not inside an initialised pool worker")
    return _WORKER_PAYLOAD


def _references_equivalent(
    a: Optional[ReferenceRun], b: Optional[ReferenceRun]
) -> bool:
    """Two golden runs are interchangeable when their observable record
    matches — deterministic runs of the same workload always do, so a
    re-run (e.g. pruning validation) keeps the warm pool."""
    if a is None or b is None:
        return a is b
    if a is b:
        return True
    return (
        a.hashes == b.hashes
        and a.instructions_at == b.instructions_at
        and a.outputs == b.outputs
    )


class ReferencePool:
    """A reusable process pool initialised with a :class:`WorkerPayload`.

    Usage::

        with ReferencePool(workers=4) as pool:
            campaign_a.run(workers=4, pool=pool)
            campaign_b.run(workers=4, pool=pool)   # workers stay warm
    """

    def __init__(self, workers: int):
        if workers <= 0:
            raise CampaignError("workers must be positive")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._payload: Optional[WorkerPayload] = None

    def _compatible(self, payload: WorkerPayload) -> bool:
        current = self._payload
        if current is None:
            return False
        return (
            current.workload is payload.workload
            and current.iterations == payload.iterations
            and current.watchdog_factor == payload.watchdog_factor
            and current.environment_factory is payload.environment_factory
            and current.fast_dispatch == payload.fast_dispatch
            and current.incremental_hash == payload.incremental_hash
            and _references_equivalent(current.reference, payload.reference)
        )

    def prepare(self, payload: WorkerPayload) -> None:
        """Ensure the pool's workers are initialised for ``payload``.

        A no-op when the current workers are already compatible; an
        incompatible payload shuts the pool down and spawns fresh
        workers.
        """
        if self._executor is not None and self._compatible(payload):
            return
        self.close()
        self._payload = payload
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_initialize_worker,
            initargs=(payload,),
        )

    def submit(self, fn, *args) -> Future:
        """Submit a task; :meth:`prepare` must have been called."""
        if self._executor is None:
            raise CampaignError("pool.prepare() must come before submit()")
        return self._executor.submit(fn, *args)

    def rebuild(self, payload: WorkerPayload) -> None:
        """Replace a broken executor with fresh workers for ``payload``.

        A worker process death leaves ``ProcessPoolExecutor`` permanently
        broken (every later submit raises ``BrokenProcessPool``); the
        campaign's recovery loop calls this to spawn a new pool and
        requeue the lost chunks.
        """
        self.close()
        self.prepare(payload)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._payload = None

    def __enter__(self) -> "ReferencePool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
