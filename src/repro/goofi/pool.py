"""A persistent worker pool that shares one golden reference run.

Before this module existed, every campaign worker re-executed the full
651-iteration golden reference before touching its first fault — pure
redundancy, since the reference is deterministic and identical across
workers.  :class:`ReferencePool` instead computes the
:class:`~repro.goofi.target.ReferenceRun` once in the parent and ships
its snapshots/hashes/outputs to each worker process through the executor
*initializer*, so the payload is pickled once per process rather than
once per task.  The pool is deliberately long-lived: the SCIFI
injection phase, a pruning-validation re-run and a pre-runtime SWIFI
phase can all reuse the same warm workers, as long as their payloads are
compatible (:meth:`ReferencePool.prepare` re-initialises the pool only
when they are not).

Setting ``reference=None`` in the payload restores the legacy behaviour
— each worker runs its own golden reference during initialisation —
which the benchmark uses as the shared-reference baseline.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import CampaignError
from repro.goofi.environment import EngineEnvironment
from repro.goofi.target import ReferenceRun, TargetSystem
from repro.tcc.codegen import CompiledProgram


@dataclass
class WorkerPayload:
    """Everything a worker needs to build its target system once."""

    workload: CompiledProgram
    iterations: int
    watchdog_factor: float
    environment_factory: Callable[[], EngineEnvironment]
    #: The parent's golden run, or ``None`` to make each worker compute
    #: its own (the pre-optimisation baseline).
    reference: Optional[ReferenceRun]
    fast_dispatch: bool = True
    incremental_hash: bool = True
    #: Selects the worker target's snapshot/restore data plane (delta
    #: checkpoints + undo-log cursors vs legacy full copies).  Shipped
    #: explicitly so a golden-equivalence validation comparing the two
    #: planes never reuses the other leg's warm workers.
    delta_dataplane: bool = True


#: Per-process state, populated by :func:`_initialize_worker`.
_WORKER_TARGET: Optional[TargetSystem] = None
_WORKER_PAYLOAD: Optional[WorkerPayload] = None


def _initialize_worker(payload: WorkerPayload) -> None:
    """Executor initializer: build this process's target system.

    With a shipped reference the worker only loads the program (the
    loader also derives the control-flow signature successors the SIG
    checks need) and adopts the parent's checkpoints; experiments then
    start from restored snapshots.  Without one it re-runs the golden
    reference, exactly as the legacy per-chunk workers did.
    """
    global _WORKER_TARGET, _WORKER_PAYLOAD
    target = TargetSystem(
        workload=payload.workload,
        environment=payload.environment_factory(),
        iterations=payload.iterations,
        watchdog_factor=payload.watchdog_factor,
        fast_dispatch=payload.fast_dispatch,
        incremental_hash=payload.incremental_hash,
        environment_factory=payload.environment_factory,
        delta_dataplane=payload.delta_dataplane,
    )
    if payload.reference is None:
        target.run_reference()
    else:
        target.cpu.load(payload.workload.program)
        target.reference = payload.reference
    _WORKER_TARGET = target
    _WORKER_PAYLOAD = payload


def worker_target() -> TargetSystem:
    """The calling worker process's target system."""
    if _WORKER_TARGET is None:
        raise CampaignError("not inside an initialised pool worker")
    return _WORKER_TARGET


def worker_payload() -> WorkerPayload:
    """The calling worker process's initialisation payload."""
    if _WORKER_PAYLOAD is None:
        raise CampaignError("not inside an initialised pool worker")
    return _WORKER_PAYLOAD


def _factories_equivalent(a, b) -> bool:
    """Whether two environment factories build interchangeable workers.

    Identity is sufficient but not necessary: the common factories are
    module-level classes or functions, and a caller that rebuilds an
    equal configuration (``dataclasses.replace``, a re-import, a fresh
    ``functools.partial``) hands over a *different object* naming the
    *same behaviour*.  Comparing the importable identity — module plus
    qualname — keeps the warm pool in those cases.  Factories without a
    stable importable identity (lambdas, local functions: their
    qualname contains ``<lambda>`` or ``<locals>``, so one name can
    cover many distinct behaviours) only ever match by identity.
    """
    if a is b:
        return True
    fingerprint = (
        getattr(a, "__module__", None),
        getattr(a, "__qualname__", None),
    )
    if fingerprint != (
        getattr(b, "__module__", None),
        getattr(b, "__qualname__", None),
    ):
        return False
    if fingerprint[0] is None or fingerprint[1] is None:
        return False
    return "<lambda>" not in fingerprint[1] and "<locals>" not in fingerprint[1]


def _references_equivalent(
    a: Optional[ReferenceRun], b: Optional[ReferenceRun]
) -> bool:
    """Two golden runs are interchangeable when their observable record
    matches — deterministic runs of the same workload always do, so a
    re-run (e.g. pruning validation) keeps the warm pool."""
    if a is None or b is None:
        return a is b
    if a is b:
        return True
    return (
        a.hashes == b.hashes
        and a.instructions_at == b.instructions_at
        and a.outputs == b.outputs
    )


class ReferencePool:
    """A reusable process pool initialised with a :class:`WorkerPayload`.

    Usage::

        with ReferencePool(workers=4) as pool:
            campaign_a.run(workers=4, pool=pool)
            campaign_b.run(workers=4, pool=pool)   # workers stay warm
    """

    def __init__(self, workers: int):
        if workers <= 0:
            raise CampaignError("workers must be positive")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._payload: Optional[WorkerPayload] = None
        #: Why the last :meth:`prepare` had to tear down a warm pool
        #: (the incompatible payload field), or ``None``.
        self.last_respawn_reason: Optional[str] = None
        #: Bumped every time a fresh executor is spawned.  Futures from
        #: generation N are worthless once generation N+1 exists; the
        #: dispatch loop uses this to tell a result from the current
        #: pool apart from a straggler of a torn-down one.
        self.generation: int = 0

    def _incompatibility(self, payload: WorkerPayload) -> Optional[str]:
        """The first payload field that makes the warm workers unusable,
        or ``None`` when they are compatible."""
        current = self._payload
        if current is None:
            return "uninitialised"
        if current.workload is not payload.workload:
            return "workload"
        if current.iterations != payload.iterations:
            return "iterations"
        if current.watchdog_factor != payload.watchdog_factor:
            return "watchdog_factor"
        if not _factories_equivalent(
            current.environment_factory, payload.environment_factory
        ):
            return "environment_factory"
        if current.fast_dispatch != payload.fast_dispatch:
            return "fast_dispatch"
        if current.incremental_hash != payload.incremental_hash:
            return "incremental_hash"
        if current.delta_dataplane != payload.delta_dataplane:
            return "delta_dataplane"
        if not _references_equivalent(current.reference, payload.reference):
            return "reference"
        return None

    def _compatible(self, payload: WorkerPayload) -> bool:
        return self._payload is not None and self._incompatibility(payload) is None

    def prepare(self, payload: WorkerPayload) -> bool:
        """Ensure the pool's workers are initialised for ``payload``.

        A no-op when the current workers are already compatible; an
        incompatible payload shuts the pool down and spawns fresh
        workers.  Returns ``True`` exactly when a *warm* pool had to be
        torn down (a forced respawn — :attr:`last_respawn_reason` then
        names the offending payload field), ``False`` for a no-op or a
        cold first spawn.
        """
        respawn = False
        if self._executor is not None:
            reason = self._incompatibility(payload)
            if reason is None:
                return False
            respawn = True
            self.last_respawn_reason = reason
        self.close()
        self._payload = payload
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_initialize_worker,
            initargs=(payload,),
        )
        self.generation += 1
        return respawn

    def submit(self, fn, *args) -> Future:
        """Submit a task; :meth:`prepare` must have been called."""
        if self._executor is None:
            raise CampaignError("pool.prepare() must come before submit()")
        return self._executor.submit(fn, *args)

    def rebuild(self, payload: WorkerPayload) -> None:
        """Replace a broken executor with fresh workers for ``payload``.

        A worker process death leaves ``ProcessPoolExecutor`` permanently
        broken (every later submit raises ``BrokenProcessPool``); the
        campaign's recovery loop calls this to spawn a new pool and
        requeue the lost chunks.
        """
        self.close()
        self.prepare(payload)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._payload = None

    def __enter__(self) -> "ReferencePool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
