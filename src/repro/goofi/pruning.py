"""Fault-plan pruning from the reference run's def/use liveness.

Given the :class:`~repro.faults.liveness.LivenessMap` recorded during
``run_reference(record_access=True)``, :func:`preclassify_plan` splits a
sampled fault plan into

* **live** faults — the bit is read before any full overwrite, so only
  simulation can tell the outcome; and
* **predicted** faults — the bit is provably overwritten (written with an
  independent value before its next read) or provably latent (never
  touched again), so the experiment's result is known without running it.

:func:`synthesize_run` turns a predicted fault into an
:class:`~repro.goofi.target.ExperimentRun` that classifies — through the
ordinary §4.1 classifier — into exactly the :class:`Outcome` the
simulation would have produced: reference outputs with an unchanged
final state for *overwritten*, reference outputs with a differing final
state for *latent*.  Because :class:`Outcome` is a frozen dataclass,
predicted and simulated outcomes compare equal, which is what lets
:func:`validate_pruning` assert full per-experiment equivalence.

The same liveness map powers *equivalence collapse* of the live
remainder: :func:`collapse_live_plan` groups live single-bit faults
whose first live read is the same dynamic access consuming the same
delivered value — provably outcome-identical trajectories, see
:meth:`~repro.faults.liveness.LivenessMap.first_live_read` — so the
campaign simulates one representative per class and
:func:`replay_equivalent` copies its result to the other members
(``provenance='equivalent'``).  At the default fault density the plan
samples ~500 faults over ~3.5M element·time sites, so two faults
hitting the same first-read site are rare: expect classes of size 1
almost always, i.e. collapse is a correctness-preserving *cap* on
duplicate work, not a guaranteed speedup (``docs/performance.md``).

:func:`validate_pruning` and :func:`validate_collapse` share one
harness that first runs a small throwaway warm-up campaign so both
timed legs see identical warm-start conditions — process pool spawned,
dispatch tables predecoded — instead of the first leg silently paying
the cold-start tax (which used to bias the reported wall-clock ratio
*against* pruning).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.classify import Outcome
from repro.analysis.report import render_outcome_table
from repro.errors import CampaignError
from repro.faults.liveness import Liveness, LivenessMap
from repro.faults.models import FaultDescriptor
from repro.goofi.dataplane import SplicedOutputs
from repro.goofi.target import ExperimentRun, ReferenceRun


@dataclass
class PrunedPlan:
    """A fault plan split by the def/use pre-classification.

    Attributes:
        live: ``(plan index, fault)`` pairs that must be simulated.
        predicted: ``(plan index, fault, classification)`` triples whose
            outcome is provable from the reference trace.
    """

    live: List[Tuple[int, FaultDescriptor]]
    predicted: List[Tuple[int, FaultDescriptor, Liveness]]

    @property
    def total(self) -> int:
        """Size of the original plan."""
        return len(self.live) + len(self.predicted)

    @property
    def reduction(self) -> float:
        """Fraction of experiments that need no simulation."""
        return len(self.predicted) / self.total if self.total else 0.0


def preclassify_plan(
    plan: Sequence[FaultDescriptor], liveness: LivenessMap
) -> PrunedPlan:
    """Split a fault plan into live and predicted experiments."""
    return preclassify_pairs(list(enumerate(plan)), liveness)


def preclassify_pairs(
    pairs: Sequence[Tuple[int, FaultDescriptor]], liveness: LivenessMap
) -> PrunedPlan:
    """:func:`preclassify_plan` over pre-indexed ``(plan index, fault)``
    pairs — the resume path prunes only the not-yet-completed remainder
    of a plan, whose indices are not contiguous."""
    live: List[Tuple[int, FaultDescriptor]] = []
    predicted: List[Tuple[int, FaultDescriptor, Liveness]] = []
    for index, fault in pairs:
        classification = liveness.classify_fault(fault)
        if classification is Liveness.LIVE:
            live.append((index, fault))
        else:
            predicted.append((index, fault, classification))
    return PrunedPlan(live=live, predicted=predicted)


def synthesize_run(
    fault: FaultDescriptor,
    classification: Liveness,
    reference: ReferenceRun,
) -> ExperimentRun:
    """Build the run a predicted fault would have produced.

    An overwritten fault re-converges to the reference, so its outputs
    match and the final state is identical; a latent fault also delivers
    the reference outputs (nothing ever read the bit) but the flip
    survives into the final-state hash.
    """
    if classification is Liveness.LIVE:
        raise CampaignError("live faults must be simulated, not synthesised")
    return ExperimentRun(
        fault=fault,
        # A view over the (immutable) golden outputs: predicted runs
        # deliver the reference trace verbatim, so there is nothing to
        # copy — pickling flattens the view for worker transport.
        outputs=SplicedOutputs(reference.outputs, len(reference.outputs)),
        final_state_differs=classification is Liveness.LATENT,
        predicted=True,
    )


# -- equivalence collapse ------------------------------------------------------
#: A collapse-class key: ``(partition, element, trace ordinal of the
#: first live read, consumed mask, delivered masked value)``.  Equal
#: keys put the machine into the identical full state at the consuming
#: read (the pre-read state is reference ⊕ flip for both, and an equal
#: delivered value at the same site forces the same flipped bit), so
#: the whole subsequent trajectory coincides.
CollapseKey = Tuple[str, str, int, int, int]


@dataclass
class CollapsedPlan:
    """The live plan after grouping outcome-equivalent faults.

    Attributes:
        representatives: ``(plan index, fault)`` pairs to simulate —
            one per equivalence class, plus every live fault that has
            no collapse key (multi-bit, always-live or uncovered).
        members: representative plan index → the other
            ``(plan index, fault)`` pairs of its class, whose results
            are replayed from the representative's.  Only classes with
            at least one non-representative member appear.
    """

    representatives: List[Tuple[int, FaultDescriptor]]
    members: Dict[int, List[Tuple[int, FaultDescriptor]]] = field(
        default_factory=dict
    )

    @property
    def collapsed(self) -> int:
        """Live faults that need no simulation of their own."""
        return sum(len(group) for group in self.members.values())

    @property
    def classes(self) -> int:
        """Number of multi-member equivalence classes."""
        return len(self.members)


def collapse_key(
    fault: FaultDescriptor, liveness: LivenessMap
) -> Optional[CollapseKey]:
    """The fault's collapse-class key, or ``None`` if it must not collapse.

    Only single-bit faults with a localisable first live read get a
    key: a multi-bit fault's bits interact (one bit may be consumed
    while another is still latent), and always-live or uncovered
    elements have no trace site to anchor the equivalence on.
    """
    if len(fault.targets) != 1:
        return None
    target = fault.targets[0]
    site = liveness.first_live_read(target, fault.time)
    if site is None:
        return None
    return (
        target.partition,
        target.element,
        site.ordinal,
        site.mask,
        site.delivered,
    )


def collapse_live_plan(
    pairs: Sequence[Tuple[int, FaultDescriptor]], liveness: LivenessMap
) -> CollapsedPlan:
    """Group live faults into outcome-equivalence classes.

    The first class member in plan order becomes the representative, so
    every collapsed member's plan index is strictly greater than its
    representative's — the execution loops exploit this (a member's
    replay always happens after its representative simulated).
    """
    representatives: List[Tuple[int, FaultDescriptor]] = []
    members: Dict[int, List[Tuple[int, FaultDescriptor]]] = {}
    leaders: Dict[CollapseKey, int] = {}
    for index, fault in pairs:
        key = collapse_key(fault, liveness)
        if key is None:
            representatives.append((index, fault))
            continue
        leader = leaders.get(key)
        if leader is None:
            leaders[key] = index
            representatives.append((index, fault))
        else:
            members.setdefault(leader, []).append((index, fault))
    return CollapsedPlan(representatives=representatives, members=members)


def replay_equivalent(
    fault: FaultDescriptor,
    representative: ExperimentRun,
    representative_index: int,
) -> ExperimentRun:
    """The run an equivalent fault shares with its class representative.

    Every observable field is copied from the simulated
    representative — same outputs, same detection (or none), same
    termination — because the collapse invariant guarantees the two
    trajectories are identical from the consuming read onward and
    reference-identical before it.
    """
    if representative.quarantined or representative.predicted:
        raise CampaignError(
            "equivalence replay needs a simulated representative run"
        )
    return ExperimentRun(
        fault=fault,
        # Shares the representative's outputs by view, not by copy.
        outputs=SplicedOutputs(
            representative.outputs, len(representative.outputs)
        ),
        detection=representative.detection,
        detected_iteration=representative.detected_iteration,
        final_state_differs=representative.final_state_differs,
        early_exit_iteration=representative.early_exit_iteration,
        timed_out=representative.timed_out,
        instructions_executed=representative.instructions_executed,
        equivalent=True,
        representative_index=representative_index,
    )


# -- validation ----------------------------------------------------------------
@dataclass
class ValidationReport:
    """Result of running one campaign with and without pruning.

    Attributes:
        faults: plan size.
        simulated: experiments actually simulated in the pruned run.
        predicted: experiments predicted from the liveness map.
        mismatches: ``(plan index, pruned outcome, unpruned outcome)``
            triples where the two runs disagree (must be empty).
        summaries_match: the rendered Tables 2/3 summaries are identical.
        pruned_wall_seconds: injection-phase wall time of the candidate
            (pruned / collapsed) leg.
        unpruned_wall_seconds: injection-phase wall time of the plain
            baseline leg.  Both legs run after a throwaway warm-up
            campaign, so neither pays the pool-spawn/predecode
            cold-start tax the other skipped.
        equivalent: experiments replayed from an equivalence-class
            representative in the candidate leg (collapse validation
            only; 0 for plain pruning validation).
    """

    faults: int
    simulated: int
    predicted: int
    mismatches: List[Tuple[int, Outcome, Outcome]]
    summaries_match: bool
    pruned_wall_seconds: float
    unpruned_wall_seconds: float
    equivalent: int = 0

    @property
    def reduction(self) -> float:
        """Fraction of the plan that was not simulated."""
        return (
            (self.predicted + self.equivalent) / self.faults
            if self.faults
            else 0.0
        )

    @property
    def ok(self) -> bool:
        """True when pruning changed nothing observable."""
        return not self.mismatches and self.summaries_match

    def render(self) -> str:
        """Human-readable validation verdict."""
        lines = [
            f"pruning validation over {self.faults} faults:",
            f"  simulated            {self.simulated}",
            f"  predicted            {self.predicted}"
            f"  ({self.reduction:.1%} reduction)",
            f"  equivalent           {self.equivalent}",
            f"  outcome mismatches   {len(self.mismatches)}",
            f"  summaries identical  {'yes' if self.summaries_match else 'NO'}",
            f"  wall seconds         {self.pruned_wall_seconds:.2f} pruned"
            f" vs {self.unpruned_wall_seconds:.2f} unpruned",
        ]
        for index, pruned, unpruned in self.mismatches[:10]:
            lines.append(
                f"  MISMATCH at plan index {index}: "
                f"pruned={pruned.category.value} "
                f"unpruned={unpruned.category.value}"
            )
        if len(self.mismatches) > 10:
            lines.append(f"  ... and {len(self.mismatches) - 10} more")
        lines.append("  verdict              " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


#: Fault count of the throwaway warm-up campaign (scaled up so every
#: pool worker gets at least a couple of chunks to chew on).
_WARMUP_FAULTS = 8


def _warm_up(config, workers: int, pool) -> None:
    """Run a small throwaway campaign before timing anything.

    The first campaign a process (or worker pool) runs pays one-time
    costs the later ones do not: spawning and initialising the pool
    workers, populating the process-wide predecode/dispatch tables,
    importing numpy into each worker.  When ``validate_pruning`` timed
    its first leg cold and its second leg warm, those costs were
    silently billed to whichever leg ran first.  This warm-up pays them
    on a tiny plan (same workload, iterations and watchdog — so the
    pool payload stays compatible and the timed legs reuse the warm
    workers without a respawn) and its wall time is discarded.
    """
    from repro.goofi.campaign import ScifiCampaign

    warm = replace(
        config,
        name=f"{config.name} (warm-up)",
        faults=max(_WARMUP_FAULTS, 2 * workers),
        prune=False,
        collapse=False,
        chaos=None,
    )
    if pool is not None:
        ScifiCampaign(warm).run(pool=pool)
    else:
        ScifiCampaign(warm).run(workers=workers)


def _validate(candidate_config, baseline_config, workers: int) -> ValidationReport:
    """Run the candidate and baseline campaigns warm, compare totally.

    The comparison is per-experiment :class:`Outcome` equality at every
    plan index plus byte-identical rendered summary tables.  Both runs
    share the fingerprint-relevant configuration (and thus the seed and
    fault plan), so any difference is a misclassification in the
    candidate's shortcut machinery.
    """
    from repro.goofi.campaign import ScifiCampaign
    from repro.goofi.pool import ReferencePool

    if workers > 1:
        # Both runs share one warm worker pool: the golden runs are
        # value-identical, so neither campaign respawns workers.
        with ReferencePool(workers) as pool:
            _warm_up(candidate_config, workers, pool)
            candidate = ScifiCampaign(candidate_config).run(pool=pool)
            baseline = ScifiCampaign(baseline_config).run(pool=pool)
    else:
        _warm_up(candidate_config, workers, None)
        candidate = ScifiCampaign(candidate_config).run(workers=workers)
        baseline = ScifiCampaign(baseline_config).run(workers=workers)
    mismatches = [
        (index, p, u)
        for index, (p, u) in enumerate(zip(candidate.outcomes, baseline.outcomes))
        if p != u
    ]
    predicted = sum(1 for run in candidate.experiments if run.predicted)
    equivalent = sum(1 for run in candidate.experiments if run.equivalent)
    return ValidationReport(
        faults=len(candidate.experiments),
        simulated=len(candidate.experiments) - predicted - equivalent,
        predicted=predicted,
        mismatches=mismatches,
        summaries_match=(
            render_outcome_table(candidate.summary())
            == render_outcome_table(baseline.summary())
        ),
        pruned_wall_seconds=candidate.wall_seconds,
        unpruned_wall_seconds=baseline.wall_seconds,
        equivalent=equivalent,
    )


def validate_pruning(config, workers: int = 1) -> ValidationReport:
    """Run one campaign twice — pruned and unpruned — and compare.

    The comparison is total: per-experiment :class:`Outcome` equality at
    every plan index plus byte-identical rendered summary tables.  Both
    runs share the configuration (and thus the seed and fault plan), so
    any difference is a pruning misclassification.  A throwaway warm-up
    campaign runs first so the reported wall-clock ratio compares two
    equally warm legs.
    """
    return _validate(
        replace(config, prune=True), replace(config, prune=False), workers
    )


def validate_collapse(config, workers: int = 1) -> ValidationReport:
    """Validate the full shortcut stack against the plain baseline.

    The candidate leg runs with pruning, equivalence collapse and the
    configured batch size; the baseline leg disables all three
    (``prune=False, collapse=False, batch_size=1``).  The comparison is
    the same total-equivalence check as :func:`validate_pruning` — any
    outcome divergence or summary-table difference fails it.
    """
    candidate = replace(config, prune=True, collapse=True)
    baseline = replace(config, prune=False, collapse=False, batch_size=1)
    return _validate(candidate, baseline, workers)
