"""Fault-plan pruning from the reference run's def/use liveness.

Given the :class:`~repro.faults.liveness.LivenessMap` recorded during
``run_reference(record_access=True)``, :func:`preclassify_plan` splits a
sampled fault plan into

* **live** faults — the bit is read before any full overwrite, so only
  simulation can tell the outcome; and
* **predicted** faults — the bit is provably overwritten (written with an
  independent value before its next read) or provably latent (never
  touched again), so the experiment's result is known without running it.

:func:`synthesize_run` turns a predicted fault into an
:class:`~repro.goofi.target.ExperimentRun` that classifies — through the
ordinary §4.1 classifier — into exactly the :class:`Outcome` the
simulation would have produced: reference outputs with an unchanged
final state for *overwritten*, reference outputs with a differing final
state for *latent*.  Because :class:`Outcome` is a frozen dataclass,
predicted and simulated outcomes compare equal, which is what lets
:func:`validate_pruning` assert full per-experiment equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from repro.analysis.classify import Outcome
from repro.analysis.report import render_outcome_table
from repro.errors import CampaignError
from repro.faults.liveness import Liveness, LivenessMap
from repro.faults.models import FaultDescriptor
from repro.goofi.target import ExperimentRun, ReferenceRun


@dataclass
class PrunedPlan:
    """A fault plan split by the def/use pre-classification.

    Attributes:
        live: ``(plan index, fault)`` pairs that must be simulated.
        predicted: ``(plan index, fault, classification)`` triples whose
            outcome is provable from the reference trace.
    """

    live: List[Tuple[int, FaultDescriptor]]
    predicted: List[Tuple[int, FaultDescriptor, Liveness]]

    @property
    def total(self) -> int:
        """Size of the original plan."""
        return len(self.live) + len(self.predicted)

    @property
    def reduction(self) -> float:
        """Fraction of experiments that need no simulation."""
        return len(self.predicted) / self.total if self.total else 0.0


def preclassify_plan(
    plan: Sequence[FaultDescriptor], liveness: LivenessMap
) -> PrunedPlan:
    """Split a fault plan into live and predicted experiments."""
    return preclassify_pairs(list(enumerate(plan)), liveness)


def preclassify_pairs(
    pairs: Sequence[Tuple[int, FaultDescriptor]], liveness: LivenessMap
) -> PrunedPlan:
    """:func:`preclassify_plan` over pre-indexed ``(plan index, fault)``
    pairs — the resume path prunes only the not-yet-completed remainder
    of a plan, whose indices are not contiguous."""
    live: List[Tuple[int, FaultDescriptor]] = []
    predicted: List[Tuple[int, FaultDescriptor, Liveness]] = []
    for index, fault in pairs:
        classification = liveness.classify_fault(fault)
        if classification is Liveness.LIVE:
            live.append((index, fault))
        else:
            predicted.append((index, fault, classification))
    return PrunedPlan(live=live, predicted=predicted)


def synthesize_run(
    fault: FaultDescriptor,
    classification: Liveness,
    reference: ReferenceRun,
) -> ExperimentRun:
    """Build the run a predicted fault would have produced.

    An overwritten fault re-converges to the reference, so its outputs
    match and the final state is identical; a latent fault also delivers
    the reference outputs (nothing ever read the bit) but the flip
    survives into the final-state hash.
    """
    if classification is Liveness.LIVE:
        raise CampaignError("live faults must be simulated, not synthesised")
    return ExperimentRun(
        fault=fault,
        outputs=list(reference.outputs),
        final_state_differs=classification is Liveness.LATENT,
        predicted=True,
    )


# -- validation ----------------------------------------------------------------
@dataclass
class ValidationReport:
    """Result of running one campaign with and without pruning.

    Attributes:
        faults: plan size.
        simulated: experiments actually simulated in the pruned run.
        predicted: experiments predicted from the liveness map.
        mismatches: ``(plan index, pruned outcome, unpruned outcome)``
            triples where the two runs disagree (must be empty).
        summaries_match: the rendered Tables 2/3 summaries are identical.
        pruned_wall_seconds: injection-phase wall time with pruning.
        unpruned_wall_seconds: injection-phase wall time without.
    """

    faults: int
    simulated: int
    predicted: int
    mismatches: List[Tuple[int, Outcome, Outcome]]
    summaries_match: bool
    pruned_wall_seconds: float
    unpruned_wall_seconds: float

    @property
    def reduction(self) -> float:
        """Fraction of the plan that was not simulated."""
        return self.predicted / self.faults if self.faults else 0.0

    @property
    def ok(self) -> bool:
        """True when pruning changed nothing observable."""
        return not self.mismatches and self.summaries_match

    def render(self) -> str:
        """Human-readable validation verdict."""
        lines = [
            f"pruning validation over {self.faults} faults:",
            f"  simulated            {self.simulated}",
            f"  predicted            {self.predicted}"
            f"  ({self.reduction:.1%} reduction)",
            f"  outcome mismatches   {len(self.mismatches)}",
            f"  summaries identical  {'yes' if self.summaries_match else 'NO'}",
            f"  wall seconds         {self.pruned_wall_seconds:.2f} pruned"
            f" vs {self.unpruned_wall_seconds:.2f} unpruned",
        ]
        for index, pruned, unpruned in self.mismatches[:10]:
            lines.append(
                f"  MISMATCH at plan index {index}: "
                f"pruned={pruned.category.value} "
                f"unpruned={unpruned.category.value}"
            )
        if len(self.mismatches) > 10:
            lines.append(f"  ... and {len(self.mismatches) - 10} more")
        lines.append("  verdict              " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def validate_pruning(config, workers: int = 1) -> ValidationReport:
    """Run one campaign twice — pruned and unpruned — and compare.

    The comparison is total: per-experiment :class:`Outcome` equality at
    every plan index plus byte-identical rendered summary tables.  Both
    runs share the configuration (and thus the seed and fault plan), so
    any difference is a pruning misclassification.
    """
    from repro.goofi.campaign import ScifiCampaign
    from repro.goofi.pool import ReferencePool

    if workers > 1:
        # Both runs share one warm worker pool: the golden runs are
        # value-identical, so the second campaign skips respawning.
        with ReferencePool(workers) as pool:
            pruned = ScifiCampaign(replace(config, prune=True)).run(pool=pool)
            unpruned = ScifiCampaign(replace(config, prune=False)).run(pool=pool)
    else:
        pruned = ScifiCampaign(replace(config, prune=True)).run(workers=workers)
        unpruned = ScifiCampaign(replace(config, prune=False)).run(workers=workers)
    mismatches = [
        (index, p, u)
        for index, (p, u) in enumerate(zip(pruned.outcomes, unpruned.outcomes))
        if p != u
    ]
    predicted = sum(1 for run in pruned.experiments if run.predicted)
    return ValidationReport(
        faults=len(pruned.experiments),
        simulated=len(pruned.experiments) - predicted,
        predicted=predicted,
        mismatches=mismatches,
        summaries_match=(
            render_outcome_table(pruned.summary())
            == render_outcome_table(unpruned.summary())
        ),
        pruned_wall_seconds=pruned.wall_seconds,
        unpruned_wall_seconds=unpruned.wall_seconds,
    )
