"""Crash-safety machinery for fault-injection campaigns.

The paper's subject is surviving faults — executable assertions plus
best-effort recovery — and the injection harness itself follows the same
philosophy.  This module holds the pieces
:class:`~repro.goofi.campaign.ScifiCampaign` uses to make campaign
execution crash-safe and self-healing:

* :class:`RecoveryPolicy` — retry budgets, capped exponential backoff,
  quarantine thresholds and the database batch size;
* :class:`ResultSink` — streams classified experiments into the
  database in batched transactions, so every outcome is durable the
  moment its chunk finishes rather than at campaign end;
* :func:`config_fingerprint` / :func:`workload_digest` — the stored
  identity a resumed campaign is checked against before re-deriving its
  fault plan;
* :func:`quarantined_run` — the conservative stand-in result recorded
  (``provenance='quarantined'``) for an experiment that repeatedly
  crashed its worker, so a poison experiment never aborts a campaign;
* :class:`ChaosSpec` — the test/CI hook that injects deterministic
  worker crashes ("crash on experiment N, K times"), counted across
  processes through exclusive marker files.

See ``docs/robustness.md`` for the failure model and policy rationale.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignError
from repro.goofi.target import ExperimentRun


@dataclass
class RecoveryPolicy:
    """Knobs of the campaign's worker-failure recovery.

    Attributes:
        max_chunk_retries: failures a single experiment may accumulate
            (worker exceptions, counted once its chunk has been bisected
            down to size one) before it is quarantined.
        quarantine_after: worker *kills* (process deaths) a single
            experiment may cause before it is quarantined.  The paper's
            best-effort stance: two strikes and the experiment is
            recorded as poisoned instead of aborting the campaign.
        backoff_base: first requeue delay in seconds.
        backoff_cap: upper bound on any requeue delay.
        max_pool_rebuilds: times a broken process pool is rebuilt before
            the campaign degrades to serial in-process execution.
        db_batch: experiments per streaming database transaction.
        heartbeat_every: experiments between two ``worker_heartbeat``
            events (and live event-log flushes) in the execution loops;
            the cadence of the live status surface (`docs/
            observability.md`).  Like every knob here it never affects
            outcomes and is not part of the campaign fingerprint.
        target_chunk_seconds: the locality-aware scheduler's target wall
            time per worker chunk; completed-chunk throughput feeds back
            into the next chunk's size so slow phases keep chunks small
            (short straggler tails) and fast phases amortise dispatch
            overhead over larger ones.
        min_chunk_size: lower bound on an adaptively sized chunk.
        max_chunk_size: upper bound on an adaptively sized chunk.
        lease_ttl: default work-queue lease lifetime in seconds — how
            long a leased job may go without a heartbeat before
            :meth:`~repro.goofi.workqueue.WorkQueue.expire_due` requeues
            it.  Generous by default: the in-process pool dispatcher
            holds its own leases and must never self-expire mid-chunk;
            service workers pass a tight ttl explicitly.
        sleep: injectable delay function (tests replace it to avoid
            real waiting); never part of the campaign fingerprint.
    """

    max_chunk_retries: int = 3
    quarantine_after: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_rebuilds: int = 2
    db_batch: int = 32
    heartbeat_every: int = 25
    target_chunk_seconds: float = 1.0
    min_chunk_size: int = 4
    max_chunk_size: int = 128
    lease_ttl: float = 600.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)


def backoff_seconds(attempt: int, policy: RecoveryPolicy) -> float:
    """Capped exponential backoff for the ``attempt``-th requeue (0-based)."""
    return min(policy.backoff_cap, policy.backoff_base * (2.0 ** attempt))


def split_chunk(
    items: Sequence[Tuple[int, object]]
) -> Tuple[List[Tuple[int, object]], List[Tuple[int, object]]]:
    """Bisect a failing chunk to isolate a poison experiment.

    Returns the two non-empty halves; callers must not pass chunks of
    size one (those are retried or quarantined, never split).
    """
    if len(items) < 2:
        raise CampaignError("cannot split a chunk of fewer than two experiments")
    middle = len(items) // 2
    return list(items[:middle]), list(items[middle:])


# -- campaign identity (resume refuses on mismatch) ---------------------------
def workload_digest(workload) -> str:
    """A stable digest of a compiled workload's loadable image.

    Covers the code words, the initial data image and the entry point —
    everything that determines the reference run and therefore the fault
    plan.  Compilation is deterministic, so recompiling the same
    algorithm in a later process yields the same digest.
    """
    program = workload.program
    digest = hashlib.blake2b(digest_size=16)
    for word in program.code:
        digest.update(int(word).to_bytes(4, "little"))
    for address in sorted(program.data):
        digest.update(int(address).to_bytes(4, "little"))
        digest.update(int(program.data[address]).to_bytes(4, "little"))
    digest.update(int(program.entry).to_bytes(4, "little"))
    return digest.hexdigest()


def config_fingerprint(config) -> Dict[str, object]:
    """The resume-relevant identity of a campaign configuration.

    Only fields that change the fault plan or experiment outcomes are
    included: the workload image, fault count, seed, iteration count,
    partition restriction and watchdog factor.  Flags proven
    outcome-invariant by the equivalence tests (``early_exit``,
    ``prune``, ``share_reference``, ``fast_dispatch``,
    ``incremental_hash``) may differ between the original and the
    resumed run without affecting bit-identity of the summary.
    """
    return {
        "workload": workload_digest(config.workload),
        "faults": config.faults,
        "seed": config.seed,
        "iterations": config.iterations,
        "partitions": list(config.partitions) if config.partitions else None,
        "watchdog_factor": config.watchdog_factor,
    }


def check_fingerprint(stored: Optional[Dict[str, object]], current: Dict[str, object]) -> None:
    """Refuse a resume whose configuration diverged from the stored one."""
    if stored is None:
        raise CampaignError(
            "campaign has no stored configuration fingerprint "
            "(written before schema v4?) — cannot resume safely"
        )
    if stored != current:
        differing = sorted(
            key
            for key in set(stored) | set(current)
            if stored.get(key) != current.get(key)
        )
        raise CampaignError(
            "resume refused: configuration mismatch on "
            f"{', '.join(differing)} (stored {stored!r}, current {current!r})"
        )


# -- streaming persistence -----------------------------------------------------
class ResultSink:
    """Batches classified experiments into the campaign database.

    Each :meth:`flush` is one SQLite transaction, so a crash mid-stream
    loses at most the unflushed tail — never half a batch.  ``None``
    databases make every method a no-op, keeping campaign code branchless.
    """

    def __init__(self, database, campaign_id: Optional[int], batch_size: int = 32):
        self.database = database if campaign_id is not None else None
        self.campaign_id = campaign_id
        self.batch_size = max(1, batch_size)
        self.stored = 0
        self._pending: List[Tuple[int, object, object]] = []

    def add(self, plan_index: int, run, outcome) -> None:
        """Queue one classified experiment; flushes at the batch size."""
        if self.database is None:
            return
        self._pending.append((plan_index, run, outcome))
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Commit every queued experiment in one transaction."""
        if self.database is None or not self._pending:
            return
        self.database.store_experiment_batch(self.campaign_id, self._pending)
        self.stored += len(self._pending)
        self._pending = []


# -- quarantine ----------------------------------------------------------------
def quarantined_run(fault, reference_outputs: Sequence[float]) -> ExperimentRun:
    """The conservative stand-in result for a worker-killing experiment.

    Nothing can be observed from an experiment whose simulation dies, so
    it is recorded as if its run had timed out with the output held at
    the initial value and a differing final state — a deterministic,
    conservative stand-in (how severely it classifies depends on how far
    the reference trajectory moves from its initial output).  The run is
    flagged ``quarantined`` so it is stored with
    ``provenance='quarantined'`` and analyses can exclude or re-examine
    it; resumed runs reproduce the same stand-in bit for bit.
    """
    held = reference_outputs[0] if reference_outputs else 0.0
    return ExperimentRun(
        fault=fault,
        outputs=[held] * len(reference_outputs),
        timed_out=True,
        final_state_differs=True,
        instructions_executed=0,
        quarantined=True,
    )


# -- chaos injection (tests and the CI smoke) ----------------------------------
class ChaosError(RuntimeError):
    """The injected worker failure (deliberately not a ReproError: it
    simulates an arbitrary bug or resource kill inside a worker)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic worker-crash injection for chaos tests.

    Attributes:
        marker_dir: directory for cross-process crash accounting; each
            crash claims one exclusive marker file, so budgets hold even
            though workers are respawned between attempts.
        crashes: plan index -> number of times that experiment crashes.
        mode: ``"raise"`` raises :class:`ChaosError` inside the worker
            (the pool survives); ``"exit"`` calls ``os._exit`` (the
            worker dies and the pool breaks, like an OOM kill).
    """

    marker_dir: str
    crashes: Dict[int, int]
    mode: str = "raise"

    @classmethod
    def from_json(cls, text: str, marker_dir: str) -> "ChaosSpec":
        """Parse ``{"3": 1}`` or ``{"crashes": {"3": 1}, "mode": "exit"}``."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise CampaignError("chaos spec must be a JSON object")
        mode = "raise"
        crashes = payload
        if "crashes" in payload:
            crashes = payload["crashes"]
            mode = payload.get("mode", "raise")
        if mode not in ("raise", "exit"):
            raise CampaignError(f"chaos mode must be raise/exit, not {mode!r}")
        return cls(
            marker_dir=marker_dir,
            crashes={int(k): int(v) for k, v in crashes.items()},
            mode=str(mode),
        )


def chaos_maybe_crash(spec: Optional[ChaosSpec], index: int) -> None:
    """Crash if ``spec`` still has crash budget for plan ``index``.

    The budget is claimed through ``O_EXCL`` marker files, so exactly
    ``crashes[index]`` crashes happen across any number of worker
    processes and retries.
    """
    if spec is None:
        return
    budget = spec.crashes.get(index, 0)
    for attempt in range(budget):
        path = os.path.join(spec.marker_dir, f"crash-{index}-{attempt}")
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(handle)
        if spec.mode == "exit":
            os._exit(1)
        raise ChaosError(f"chaos: injected crash on experiment {index}")
