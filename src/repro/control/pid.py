"""PID extension of the paper's PI controller.

The paper's controller is pure PI; a derivative term is the obvious next
step for faster plants, and it adds a second state variable (the filtered
previous measurement), making it a useful multi-state test case for the
generic :class:`repro.core.ControllerGuard`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.control.base import ControllerGains, FloatController
from repro.control.limits import Limiter


class PIDController(FloatController):
    """PID controller with output limiting and anti-windup.

    States: the integral part ``x`` and the previous measurement ``y_prev``
    used by the (measurement-based) derivative term, which avoids
    derivative kick on reference steps.
    """

    def __init__(
        self,
        gains: ControllerGains = ControllerGains(kd=0.0005),
        limiter: Optional[Limiter] = None,
        initial_state: float = 0.0,
        initial_measurement: float = 0.0,
    ):
        self.gains = gains
        self.limiter = limiter if limiter is not None else Limiter()
        self.initial_state = float(initial_state)
        self.initial_measurement = float(initial_measurement)
        self.x = self.initial_state
        self.y_prev = self.initial_measurement

    def reset(self) -> None:
        self.x = self.initial_state
        self.y_prev = self.initial_measurement

    def warm_start(self, reference: float, measured: float, steady_output: float) -> None:
        """Set the integral part and derivative history for steady state."""
        self.x = float(steady_output)
        self.y_prev = float(measured)

    def anti_windup_activated(self, u: float, e: float) -> bool:
        """Stop integrating when saturated and the error pushes further out."""
        return (self.limiter.saturates_high(u) and e > 0.0) or (
            self.limiter.saturates_low(u) and e < 0.0
        )

    def step(self, reference: float, measured: float) -> float:
        """One PID iteration; returns the limited actuator command."""
        g = self.gains
        e = reference - measured
        derivative = -(measured - self.y_prev) / g.sample_time
        u = e * g.kp + self.x + g.kd * derivative
        u_lim = self.limiter.clamp(u)
        ki = 0.0 if self.anti_windup_activated(u, e) else g.ki
        self.x = self.x + g.sample_time * e * ki
        self.y_prev = measured
        return u_lim

    def state_vector(self) -> List[float]:
        """``[x, y_prev]``."""
        return [self.x, self.y_prev]

    def set_state_vector(self, state: List[float]) -> None:
        self.x, self.y_prev = state
