"""Control algorithms: the paper's PI controller and extensions.

* :class:`PIController` — Algorithm I: proportional-integral control with
  output limiting and anti-windup, exactly as in the paper's §2 listing.
* :class:`GuardedPIController` — Algorithm II: the same controller with
  executable assertions and best-effort recovery (§4.3).
* :class:`PIDController` and :class:`StateSpaceController` — extensions,
  covering the paper's future-work direction of multiple-input
  multiple-output controllers; both compose with the generic
  :class:`repro.core.ControllerGuard`.
"""

from repro.control.base import ControllerGains, FloatController
from repro.control.limits import Limiter, limit_output
from repro.control.pi import PIController
from repro.control.guarded_pi import GuardedPIController
from repro.control.observer import LuenbergerObserver, SensorGuard
from repro.control.pid import PIDController
from repro.control.statespace import StateSpaceController

__all__ = [
    "ControllerGains",
    "FloatController",
    "Limiter",
    "limit_output",
    "PIController",
    "GuardedPIController",
    "PIDController",
    "StateSpaceController",
    "LuenbergerObserver",
    "SensorGuard",
]
