"""Algorithm II: the PI controller with assertions and best effort recovery.

A direct transcription of the paper's Algorithm II listing (changes from
Algorithm I in the paper are marked **bold** there; here they are the
``in_range`` checks and the ``x_old`` / ``u_old`` backups):

.. code-block:: none

    e = r - y                      -- calculate control error
    if not in_range(x) then
        x = x_old                  -- ERROR! recover state x
    else
        x_old = x                  -- save state x
    end if
    u = e * Kp + x                 -- calculate output signal
    u_lim = limit_output(u)        -- range check of u
    if anti_windup_activated then
        Ki = 0.0                   -- disable integration
    else
        Ki = integral_gain         -- enable integration
    end if
    x = x + T * e * Ki             -- integrate, update x
    if not in_range(u_lim) then
        u_lim = u_old              -- ERROR! get last output
        x = x_old                  -- and corresponding state
    end if
    u_old = u_lim                  -- save output
    return u_lim

The equivalent generic formulation is
``ControllerGuard(PIController(), ...)``; a test verifies both produce
identical output sequences under identical injected corruptions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.control.base import ControllerGains, FloatController
from repro.control.limits import Limiter
from repro.core.monitors import AssertionEvent, AssertionMonitor


class GuardedPIController(FloatController):
    """PI controller protected by executable assertions + best effort recovery.

    The state ``x`` and the limited output ``u_lim`` are both asserted
    against the throttle's physical range; failures are recovered from the
    previous iteration's backups ``x_old`` / ``u_old``.
    """

    def __init__(
        self,
        gains: ControllerGains = ControllerGains(),
        limiter: Optional[Limiter] = None,
        initial_state: float = 0.0,
        monitor: Optional[AssertionMonitor] = None,
    ):
        self.gains = gains
        self.limiter = limiter if limiter is not None else Limiter()
        self.initial_state = float(initial_state)
        self.monitor = monitor if monitor is not None else AssertionMonitor()
        self.x = self.initial_state
        self.x_old = self.initial_state
        self.u_old = self.limiter.clamp(self.initial_state)
        self._iteration = 0

    def reset(self) -> None:
        """Restore state and both backups to their initial values."""
        self.x = self.initial_state
        self.x_old = self.initial_state
        self.u_old = self.limiter.clamp(self.initial_state)
        self._iteration = 0

    def warm_start(self, reference: float, measured: float, steady_output: float) -> None:
        """Set the state and both backups to the steady operating point."""
        self.x = float(steady_output)
        self.x_old = float(steady_output)
        self.u_old = self.limiter.clamp(float(steady_output))

    def in_range(self, value: float) -> bool:
        """The paper's executable assertion: within the throttle limits."""
        return self.limiter.in_range(value)

    def anti_windup_activated(self, u: float, e: float) -> bool:
        """Same anti-windup condition as Algorithm I."""
        return (self.limiter.saturates_high(u) and e > 0.0) or (
            self.limiter.saturates_low(u) and e < 0.0
        )

    def step(self, reference: float, measured: float) -> float:
        """One guarded PI iteration; returns the limited throttle command."""
        g = self.gains
        e = reference - measured

        if not self.in_range(self.x):
            self.monitor.record(
                AssertionEvent(
                    iteration=self._iteration,
                    kind="state",
                    index=0,
                    value=self.x,
                    recovered_to=self.x_old,
                )
            )
            self.x = self.x_old
        else:
            self.x_old = self.x

        u = e * g.kp + self.x
        u_lim = self.limiter.clamp(u)
        ki = 0.0 if self.anti_windup_activated(u, e) else g.ki
        self.x = self.x + g.sample_time * e * ki

        if not self.in_range(u_lim):
            self.monitor.record(
                AssertionEvent(
                    iteration=self._iteration,
                    kind="output",
                    index=0,
                    value=u_lim,
                    recovered_to=self.u_old,
                )
            )
            u_lim = self.u_old
            self.x = self.x_old
        self.u_old = u_lim
        self._iteration += 1
        return u_lim

    def state_vector(self) -> List[float]:
        """``[x, x_old, u_old]`` — state plus both backups."""
        return [self.x, self.x_old, self.u_old]

    def set_state_vector(self, state: List[float]) -> None:
        self.x, self.x_old, self.u_old = state
