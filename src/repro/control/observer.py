"""Analytical redundancy: an observer validating the speed sensor.

The paper's assertions check the controller's *state and output* against
physical limits.  A natural extension of the same philosophy protects
the *input*: a Luenberger observer runs the engine model alongside the
plant and predicts the next speed measurement from the delivered
commands; a measurement that disagrees wildly with the prediction is
rejected and replaced by it — best-effort recovery on the sensor path.

:class:`SensorGuard` wraps any scalar controller with that check.  With
a sane threshold it is transparent on fault-free runs (tested) and turns
corrupted-measurement transients into near-invisible deviations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.monitors import AssertionEvent, AssertionMonitor
from repro.errors import ConfigurationError
from repro.plant.engine import EngineParameters


class LuenbergerObserver:
    """A two-state observer of the engine (airflow + speed).

    Runs the :class:`~repro.plant.EngineModel` equations in parallel with
    the plant, corrected toward the measurements with gain ``l_speed``.
    The load torque is not measured; the observer treats it as the known
    base load, so predictions carry a bounded bias during load bumps —
    which the validation threshold must absorb (measured by the
    tightness ablation).
    """

    def __init__(
        self,
        params: EngineParameters = EngineParameters(),
        l_speed: float = 0.5,
        base_load: float = 20.0,
    ):
        if not 0.0 <= l_speed <= 1.0:
            raise ConfigurationError("l_speed must lie in [0, 1]")
        self.params = params
        self.l_speed = l_speed
        self.base_load = base_load
        self.airflow_estimate = 0.0
        self.speed_estimate = 0.0

    def reset(self, speed: float = 0.0) -> None:
        """Initialise the estimates at an operating point."""
        self.speed_estimate = float(speed)
        self.airflow_estimate = (
            self.params.steady_state_throttle(speed, self.base_load)
            if speed
            else 0.0
        )

    def predict(self) -> float:
        """The expected next speed measurement (before correction)."""
        return self.speed_estimate

    def update(self, command: float, measured: float) -> float:
        """Advance the estimates one sample.

        Args:
            command: the throttle command delivered this iteration.
            measured: the accepted speed measurement.

        Returns:
            The innovation (measured - predicted) before correction.
        """
        p = self.params
        innovation = measured - self.speed_estimate
        # Correct, then propagate the model one step.
        self.speed_estimate += self.l_speed * innovation
        torque = (
            p.torque_gain * self.airflow_estimate
            - p.friction * self.speed_estimate
            - self.base_load
        )
        self.airflow_estimate += (p.sample_time / p.tau_intake) * (
            command - self.airflow_estimate
        )
        self.speed_estimate += (p.sample_time / p.inertia) * torque
        if self.speed_estimate < 0.0:
            self.speed_estimate = 0.0
        return innovation

    def state_vector(self) -> List[float]:
        """``[airflow_estimate, speed_estimate]``."""
        return [self.airflow_estimate, self.speed_estimate]

    def set_state_vector(self, state: List[float]) -> None:
        """Restore estimates captured by :meth:`state_vector`."""
        self.airflow_estimate, self.speed_estimate = state


@dataclass
class SensorGuardEvent:
    """Bookkeeping for one rejected measurement."""

    iteration: int
    measured: float
    predicted: float


class SensorGuard:
    """Wrap a controller with observer-based measurement validation.

    Measurements disagreeing with the observer's prediction by more than
    ``threshold`` rpm are rejected; the prediction is used instead (best
    effort recovery on the input path).  The wrapped controller sees
    only validated measurements.
    """

    def __init__(
        self,
        controller,
        observer: Optional[LuenbergerObserver] = None,
        threshold: float = 400.0,
        monitor: Optional[AssertionMonitor] = None,
    ):
        if threshold <= 0.0:
            raise ConfigurationError("threshold must be positive")
        self.controller = controller
        self.observer = observer if observer is not None else LuenbergerObserver()
        self.threshold = threshold
        self.monitor = monitor if monitor is not None else AssertionMonitor()
        self._iteration = 0
        self._primed = False

    def reset(self) -> None:
        """Reset controller, observer and bookkeeping."""
        self.controller.reset()
        self.observer.reset()
        self._iteration = 0
        self._primed = False

    def warm_start(self, reference: float, measured: float, steady_output: float) -> None:
        """Warm-start the wrapped controller and prime the observer."""
        if hasattr(self.controller, "warm_start"):
            self.controller.warm_start(reference, measured, steady_output)
        self.observer.reset(speed=measured)
        self._primed = True

    def step(self, reference: float, measured: float) -> float:
        """One iteration with measurement validation."""
        if not self._primed:
            # First measurement anchors the observer (no history yet).
            self.observer.reset(speed=measured)
            self._primed = True
        predicted = self.observer.predict()
        accepted = measured
        deviation = measured - predicted
        valid = abs(deviation) <= self.threshold and measured == measured
        if not valid:
            self.monitor.record(
                AssertionEvent(
                    iteration=self._iteration,
                    kind="input",
                    index=0,
                    value=measured,
                    recovered_to=predicted,
                )
            )
            accepted = predicted
        command = self.controller.step(reference, accepted)
        self.observer.update(command, accepted)
        self._iteration += 1
        return command

    # -- state access -----------------------------------------------------------
    def state_vector(self) -> List[float]:
        """Controller state followed by the observer estimates."""
        return list(self.controller.state_vector()) + self.observer.state_vector()

    def set_state_vector(self, state: List[float]) -> None:
        """Restore state captured by :meth:`state_vector`."""
        split = len(state) - 2
        self.controller.set_state_vector(list(state[:split]))
        self.observer.set_state_vector(list(state[split:]))
