"""Controller base types shared by the concrete algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.constants import SAMPLE_TIME


@dataclass(frozen=True)
class ControllerGains:
    """PI(D) tuning constants.

    The defaults are tuned for :class:`repro.plant.EngineModel` (DC gain
    200 rpm/degree) to give the fast, lightly damped tracking of the
    paper's Figure 3: a crossover near 2–3 rad/s with ample phase margin.

    Attributes:
        kp: proportional gain (degrees per rpm of error).
        ki: integral gain (degrees per rpm-second of error).
        kd: derivative gain (degrees per rpm/s) — used only by the PID
            extension; the paper's controller is pure PI.
        sample_time: controller sample interval T in seconds.
    """

    kp: float = 0.01
    ki: float = 0.03
    kd: float = 0.0
    sample_time: float = SAMPLE_TIME

    def __post_init__(self) -> None:
        if self.sample_time <= 0:
            raise ConfigurationError("sample_time must be positive")
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ConfigurationError("gains must be non-negative")


class FloatController:
    """Base class for scalar controllers with a flat float state vector.

    Subclasses implement :meth:`step` and :meth:`reset` and expose their
    internal state through :meth:`state_vector` / :meth:`set_state_vector`
    so that fault injectors and checkpointing can reach it uniformly.
    """

    def step(self, reference: float, measured: float) -> float:
        """One control iteration: returns the actuator command."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the initial state."""
        raise NotImplementedError

    def state_vector(self) -> List[float]:
        """The controller's internal state as a flat list."""
        raise NotImplementedError

    def set_state_vector(self, state: List[float]) -> None:
        """Restore internal state from :meth:`state_vector` output."""
        raise NotImplementedError

    def warm_start(self, reference: float, measured: float, steady_output: float) -> None:
        """Initialise the state for an already-settled operating point.

        Called by :class:`repro.plant.ClosedLoop` when the run begins at
        steady state (the paper's Figure 3 starts with the engine already
        tracking 2000 rpm).  The default is a no-op; controllers with
        integral state override it.
        """
