"""Output limiting (the paper's ``limit_output`` function)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.constants import THROTTLE_MAX, THROTTLE_MIN


def limit_output(value: float, lower: float = THROTTLE_MIN, upper: float = THROTTLE_MAX) -> float:
    """Clamp ``value`` into ``[lower, upper]`` (paper: 0.0–70.0 degrees)."""
    if lower > upper:
        raise ConfigurationError(f"limit bounds inverted: {lower} > {upper}")
    return min(max(value, lower), upper)


@dataclass(frozen=True)
class Limiter:
    """A reusable saturation with fixed bounds.

    Provides :meth:`clamp` plus the saturation predicates the anti-windup
    logic needs.
    """

    lower: float = THROTTLE_MIN
    upper: float = THROTTLE_MAX

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ConfigurationError(f"limit bounds inverted: {self.lower} > {self.upper}")

    def clamp(self, value: float) -> float:
        """``value`` clamped into the bounds."""
        return min(max(value, self.lower), self.upper)

    def saturates_high(self, value: float) -> bool:
        """True if ``value`` exceeds the upper bound."""
        return value > self.upper

    def saturates_low(self, value: float) -> bool:
        """True if ``value`` falls below the lower bound."""
        return value < self.lower

    def in_range(self, value: float) -> bool:
        """True if ``value`` lies within the bounds (inclusive)."""
        return self.lower <= value <= self.upper
