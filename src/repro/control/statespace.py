"""MIMO state-space controller — the paper's future-work direction.

The conclusions announce work on "multiple input and multiple output
control algorithms such as jet-engine controllers".  This module provides
a discrete linear state-space controller

.. code-block:: none

    x(k+1) = A x(k) + B e(k)
    u(k)   = C x(k) + D e(k)        e(k) = r(k) - y(k)

with per-output saturation.  Its flat state vector makes it directly
guardable by :class:`repro.core.ControllerGuard`, which implements the
paper's general N-state / M-output procedure; the ``guarded_mimo``
example exercises exactly that combination.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.control.limits import Limiter
from repro.errors import ConfigurationError


class StateSpaceController:
    """Discrete LTI controller acting on the vector error ``r - y``.

    Args:
        a, b, c, d: state-space matrices with consistent shapes
            (``a``: n×n, ``b``: n×m, ``c``: p×n, ``d``: p×m for n states,
            m error inputs, p outputs).
        limiters: optional per-output saturation; defaults to the
            throttle limiter for every output.
        initial_state: initial state vector (defaults to zeros).
    """

    def __init__(
        self,
        a: Sequence[Sequence[float]],
        b: Sequence[Sequence[float]],
        c: Sequence[Sequence[float]],
        d: Sequence[Sequence[float]],
        limiters: Optional[Sequence[Limiter]] = None,
        initial_state: Optional[Sequence[float]] = None,
    ):
        self.a = np.atleast_2d(np.asarray(a, dtype=float))
        self.b = np.atleast_2d(np.asarray(b, dtype=float))
        self.c = np.atleast_2d(np.asarray(c, dtype=float))
        self.d = np.atleast_2d(np.asarray(d, dtype=float))
        n = self.a.shape[0]
        if self.a.shape != (n, n):
            raise ConfigurationError("A must be square")
        if self.b.shape[0] != n:
            raise ConfigurationError("B row count must match A")
        if self.c.shape[1] != n:
            raise ConfigurationError("C column count must match A")
        m = self.b.shape[1]
        p = self.c.shape[0]
        if self.d.shape != (p, m):
            raise ConfigurationError(f"D must be {p}x{m}")
        if limiters is None:
            limiters = [Limiter() for _ in range(p)]
        if len(limiters) != p:
            raise ConfigurationError(f"need {p} limiters, got {len(limiters)}")
        self.limiters = tuple(limiters)
        if initial_state is None:
            initial_state = np.zeros(n)
        self._initial = np.asarray(initial_state, dtype=float).reshape(n)
        self.x = self._initial.copy()

    @property
    def n_states(self) -> int:
        """Number of controller states."""
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of error inputs (reference/measurement pairs)."""
        return self.b.shape[1]

    @property
    def n_outputs(self) -> int:
        """Number of actuator outputs."""
        return self.c.shape[0]

    def reset(self) -> None:
        """Restore the initial state vector."""
        self.x = self._initial.copy()

    def step_vector(
        self, references: Sequence[float], measurements: Sequence[float]
    ) -> List[float]:
        """One MIMO iteration; returns the saturated output vector."""
        if len(references) != self.n_inputs or len(measurements) != self.n_inputs:
            raise ConfigurationError(
                f"expected {self.n_inputs} references and measurements"
            )
        e = np.asarray(references, dtype=float) - np.asarray(measurements, dtype=float)
        u = self.c @ self.x + self.d @ e
        self.x = self.a @ self.x + self.b @ e
        return [lim.clamp(float(v)) for lim, v in zip(self.limiters, u)]

    def state_vector(self) -> List[float]:
        """The state as a flat list."""
        return [float(v) for v in self.x]

    def set_state_vector(self, state: List[float]) -> None:
        """Restore the state from a flat list."""
        if len(state) != self.n_states:
            raise ConfigurationError(f"expected {self.n_states} state values")
        self.x = np.asarray(state, dtype=float)
