"""Algorithm I: the paper's PI controller with limiting and anti-windup.

This is a line-for-line implementation of the paper's Algorithm I listing:

.. code-block:: none

    e = r - y                     -- calculate control error
    u = e * Kp + x                -- calculate output signal
    u_lim = limit_output(u)       -- range check of u
    if anti_windup_activated then
        Ki = 0.0                  -- disable integration
    else
        Ki = integral_gain
    end if
    x = x + T * e * Ki            -- integrate, update x
    return u_lim

Anti-windup activates when the unlimited output ``u`` is outside the
throttle range *and* the error drives it further out, i.e. the engine is
not responding to a saturated command (§2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.control.base import ControllerGains, FloatController
from repro.control.limits import Limiter


class PIController(FloatController):
    """Proportional-integral engine-speed controller (Algorithm I).

    The single state variable ``x`` is the integral part, which is also
    the paper's critical variable: any corruption of ``x`` propagates to
    every subsequent iteration.
    """

    def __init__(
        self,
        gains: ControllerGains = ControllerGains(),
        limiter: Optional[Limiter] = None,
        initial_state: float = 0.0,
    ):
        self.gains = gains
        self.limiter = limiter if limiter is not None else Limiter()
        self.initial_state = float(initial_state)
        self.x = self.initial_state

    def reset(self) -> None:
        """Restore the integral state to its initial value."""
        self.x = self.initial_state

    def warm_start(self, reference: float, measured: float, steady_output: float) -> None:
        """Set the integral part to the steady-state actuator command."""
        self.x = float(steady_output)

    def anti_windup_activated(self, u: float, e: float) -> bool:
        """True when integration must stop to avoid windup.

        The output is saturated and the current error would push the
        integral further beyond the limit.
        """
        return (self.limiter.saturates_high(u) and e > 0.0) or (
            self.limiter.saturates_low(u) and e < 0.0
        )

    def step(self, reference: float, measured: float) -> float:
        """One PI iteration; returns the limited throttle command."""
        g = self.gains
        e = reference - measured
        u = e * g.kp + self.x
        u_lim = self.limiter.clamp(u)
        ki = 0.0 if self.anti_windup_activated(u, e) else g.ki
        self.x = self.x + g.sample_time * e * ki
        return u_lim

    def state_vector(self) -> List[float]:
        """``[x]`` — the integral state."""
        return [self.x]

    def set_state_vector(self, state: List[float]) -> None:
        (self.x,) = state
